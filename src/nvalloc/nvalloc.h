/**
 * @file
 * NVAlloc public interface.
 *
 * Usage mirrors the paper's programming model (§4.1):
 *
 *   PmDevice dev;                   // the emulated DIMM / heap file
 *   auto h = NvAlloc::openOrDie(dev); // nvalloc_init (auto-recovers)
 *   NvAlloc &alloc = *h;
 *   ThreadCtx *t = alloc.attachThread();
 *   uint64_t *root = alloc.rootWord(0); // a persistent pointer word
 *   void *p = alloc.mallocTo(*t, 256, root);  // nvalloc_malloc_to
 *   alloc.freeFrom(*t, root);                 // nvalloc_free_from
 *   alloc.detachThread(t);
 *   // destructor == nvalloc_exit (normal shutdown)
 *
 * Persistent structures must store device *offsets* (or OffsetPtr),
 * never raw pointers; mallocTo atomically publishes the new block's
 * offset into a persistent word so a crash can never leak it.
 *
 * Two consistency variants are selected by NvAllocConfig::consistency:
 * NVAlloc-LOG journals every operation in per-thread WALs; NVAlloc-GC
 * skips all small-allocation flushes and relies on a conservative
 * post-crash garbage collection from registered roots.
 */

#ifndef NVALLOC_NVALLOC_NVALLOC_H
#define NVALLOC_NVALLOC_NVALLOC_H

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/radix_tree.h"
#include "nvalloc/arena.h"
#include "nvalloc/auditor.h"
#include "nvalloc/bookkeeping_log.h"
#include "nvalloc/config.h"
#include "nvalloc/hardening.h"
#include "nvalloc/kv_stats.h"
#include "nvalloc/large_alloc.h"
#include "nvalloc/layout.h"
#include "nvalloc/maintenance.h"
#include "nvalloc/status.h"
#include "nvalloc/tcache.h"
#include "nvalloc/tx.h"
#include "nvalloc/wal.h"
#include "pm/pm_device.h"
#include "telemetry/ctl.h"
#include "telemetry/telemetry.h"

namespace nvalloc {

class NvAlloc;
class HeapAuditor;

/** Per-thread state: the tcache and the WAL ring (paper §2.1, §4.1). */
struct ThreadCtx
{
    ThreadCtx(NvAlloc *owner_, Arena *arena_, unsigned stripes,
              bool interleaved, unsigned capacity, unsigned wal_slot_)
        : owner(owner_), arena(arena_),
          tcache(stripes, interleaved, capacity), wal_slot(wal_slot_)
    {
    }

    NvAlloc *owner;
    Arena *arena;
    TCache tcache;
    Wal wal;
    unsigned wal_slot;

    /** Raised by the maintenance service under failed-alloc pressure;
     *  the owning thread honours it on its next tcache miss by
     *  draining the cache (tcaches are thread-private, so trimming is
     *  cooperative by construction). */
    std::atomic<bool> trim_pending{false};

    /** Guard-sampling tick (hardening.h): the guard sampler redirects
     *  this thread's small allocation to a guard extent every
     *  guard_sample_rate-th increment. Thread-private. */
    unsigned guard_tick = 0;

    /** Open-transaction state (tx.h). Thread-private. */
    TxContext tx;

    /** Tx id the internal alloc paths tag their WAL entries with; set
     *  only by the tx layer around its own allocSmall/allocLarge
     *  calls, zero (untagged) for every plain operation. */
    uint32_t journal_tx_id = 0;
};

/**
 * Structured report of what recovery did; returned by lastRecovery().
 * The rejection counters are only non-zero when the heap crashed under
 * fault injection (or real media faults): they record metadata that
 * failed checksum/poison verification and was treated as uncommitted
 * or quarantined rather than trusted.
 */
struct RecoveryInfo
{
    bool performed = false;
    bool after_failure = false;      //!< arena flags were not shutdown
    uint64_t slabs_rebuilt = 0;
    uint64_t extents_rebuilt = 0;
    uint64_t free_extents_rebuilt = 0;
    uint64_t wal_completions = 0;    //!< in-flight ops rolled forward
    uint64_t wal_undos = 0;          //!< in-flight ops rolled back
    uint64_t tx_committed = 0;       //!< in-flight txs rolled forward
    uint64_t tx_rolled_back = 0;     //!< in-flight txs rolled back
    uint64_t wal_rejected = 0;       //!< torn/poisoned WAL entries
    uint64_t log_entries_rejected = 0; //!< bad bookkeeping-log entries
    uint64_t log_chunks_rejected = 0;  //!< bad log chunk headers
    uint64_t slabs_quarantined = 0;  //!< headers refused this recovery
    uint64_t lines_poisoned = 0;     //!< media-poisoned device lines
    uint64_t gc_marked_blocks = 0;   //!< GC variant: reachable blocks
    uint64_t gc_reclaimed_blocks = 0; //!< GC variant: leaked blocks
    uint64_t gc_reclaimed_extents = 0;
    uint64_t virtual_ns = 0;         //!< modeled recovery time
};

/** Public name for the structured recovery report. */
using RecoveryReport = RecoveryInfo;

/** stats.scrub.* counters (online patrol scrubber, maintenance stage
 *  5). All relaxed atomics: bumped by whichever thread runs the patrol
 *  batch, read lock-free by the ctl tree. */
struct ScrubStats
{
    std::atomic<uint64_t> slices{0};   //!< patrol batches run
    std::atomic<uint64_t> items{0};    //!< metadata items examined
    std::atomic<uint64_t> findings{0}; //!< stable damage declared
    std::atomic<uint64_t> repaired{0}; //!< findings fixed in place
    std::atomic<uint64_t> retries{0};  //!< transient mismatches re-read
    std::atomic<uint64_t> passes{0};   //!< completed full walks
};

/** stats.health.* counters (heap health machine, DESIGN.md §12). */
struct HealthStats
{
    std::atomic<uint64_t> escalations{0}; //!< upward transitions
    std::atomic<uint64_t> restores{0};    //!< clean audits -> Serving
    std::atomic<uint64_t> rejected_ops{0}; //!< allocs refused unhealthy
};

/**
 * Status-or-heap result of NvAlloc::open(). Exactly one of three
 * shapes:
 *  - status == Ok:              heap is open and fully usable;
 *  - status == InvalidArgument: the config failed validation
 *                               (NvAllocConfig::invalidReason);
 *                               heap is null — nothing was touched;
 *  - status == CorruptMetadata: the superblock or log root failed
 *                               validation; heap is non-null but in
 *                               HeapMode::Failed — only read-only
 *                               introspection (ctl, stats, auditor)
 *                               works, which is why it is returned at
 *                               all.
 */
struct OpenResult
{
    NvStatus status = NvStatus::Ok;
    std::unique_ptr<NvAlloc> heap;

    explicit operator bool() const { return status == NvStatus::Ok; }
};

class NvAlloc
{
  public:
    /**
     * The factory: validate `cfg`, then open (or create) an NVAlloc
     * heap on `dev`. If the device root holds a valid superblock,
     * recovery runs: normal-shutdown recovery always, plus WAL replay
     * (LOG) or conservative GC (GC) when the arena flags show a
     * failure (paper §4.4). When cfg.maintenance_mode is Thread, the
     * background maintenance service is running by the time open()
     * returns (never on a failed open). See OpenResult for the
     * outcome shapes.
     */
    static OpenResult open(PmDevice &dev, const NvAllocConfig &cfg = {});

    /**
     * Convenience wrapper over open() for callers that treat an
     * invalid config as a programming error: asserts validation
     * passed and always returns a heap — including a degraded one
     * (openStatus() == CorruptMetadata), whose read-only introspection
     * surface is still usable. This replaces the retired two-step
     * `NvAlloc alloc(dev, cfg)` construction; open() is the factory
     * for callers that want the status handed back instead.
     */
    static std::unique_ptr<NvAlloc>
    openOrDie(PmDevice &dev, const NvAllocConfig &cfg = {});

    /** Normal shutdown (nvalloc_exit): drains live tcaches, persists
     *  GC-variant bitmaps, marks arenas cleanly shut down. */
    ~NvAlloc();

    NvAlloc(const NvAlloc &) = delete;
    NvAlloc &operator=(const NvAlloc &) = delete;

    // ---- threads ----------------------------------------------------

    /**
     * Register the calling thread; assigns the least-loaded arena.
     * Returns nullptr — with lastStatus() = TooManyThreads — when all
     * kMaxThreads WAL slots are in use (detach a thread to free one),
     * or CorruptMetadata when the heap failed to open.
     */
    ThreadCtx *attachThread();

    /** Drain the thread's tcache and release its WAL slot. */
    void detachThread(ThreadCtx *ctx);

    /**
     * Test hook: simulate a power failure. Rolls the device back to
     * its last persisted state (requires shadow mode) and neuters this
     * instance — the destructor will not run shutdown actions, exactly
     * as a killed process would not. Attached ThreadCtx pointers die
     * with the instance.
     */
    void simulateCrash();

    /**
     * Test/benchmark hook: make the next open of this heap take the
     * failure-recovery path without rolling memory back — the arena
     * flags are left at Running and the destructor is neutered, as if
     * the process had been SIGKILLed right after a quiescent point.
     * Unlike simulateCrash(), no shadow device is needed.
     */
    void dirtyRestart();

    // ---- allocation (paper §4.1) ------------------------------------

    /**
     * nvalloc_malloc_to: allocate `size` bytes and atomically publish
     * the block's offset into the persistent word `where` (which must
     * lie inside the device, or be nullptr for a volatile attach —
     * the latter is crash-unsafe in LOG mode and only sound under the
     * GC variant if the block is reachable from a GC root).
     * Returns the mapped address of the new block, or nullptr when the
     * heap is exhausted even after the reclamation slow path (drain
     * this thread's tcache, force a log slow-GC and a decay pass,
     * retry once); lastStatus() then says why and `where` is left
     * untouched.
     */
    void *mallocTo(ThreadCtx &ctx, size_t size, uint64_t *where);

    /** nvalloc_free_from: free the block whose offset is stored in
     *  `where`, atomically clearing the word. Returns InvalidFree —
     *  leaving the heap untouched — for a null/zero word, a double
     *  free, or a foreign pointer. */
    NvStatus freeFrom(ThreadCtx &ctx, uint64_t *where);

    /** Offset-returning variants for callers managing their own
     *  persistent pointers. allocOffset returns 0 on exhaustion. */
    uint64_t allocOffset(ThreadCtx &ctx, size_t size, uint64_t *where);
    NvStatus freeOffset(ThreadCtx &ctx, uint64_t off, uint64_t *where);

    // ---- transactions (tx.h, DESIGN.md §11) -------------------------

    /**
     * Open a transaction on this thread. InvalidArgument when one is
     * already open, when the heap is degraded, or under the GC/IC
     * variants (the tx protocol journals through the per-thread WALs,
     * which only the LOG variant maintains). While the tx is open,
     * plain alloc/free on this ThreadCtx are rejected; commit or abort
     * closes it. Detach and shutdown auto-abort an open tx.
     */
    NvStatus txBegin(ThreadCtx &ctx);

    /** Allocate inside the open tx. The block is durable immediately
     *  but unreachable — its offset is published into `where` only at
     *  commit; a crash before the commit record rolls it back. Returns
     *  0 on failure (exhaustion, no open tx, tx full). */
    uint64_t txAlloc(ThreadCtx &ctx, size_t size, uint64_t *where);

    /** Stage a free inside the open tx: validated now (same ordered
     *  validator contract as freeOffset), applied at commit. The block
     *  stays allocated — and rejected by plain free() — until then. */
    NvStatus txFree(ThreadCtx &ctx, uint64_t off);

    /** Transactional 8-byte update of a persistent word inside the
     *  device. The old value is journaled (bounded undo), the new
     *  value lands in place immediately; abort or crash-rollback
     *  restores the old value. */
    NvStatus txWrite(ThreadCtx &ctx, uint64_t *word, uint64_t value);

    /** Commit: one epoch-separated commit record + flush, then apply
     *  (publish attach words, perform deferred frees). After the
     *  record's flush returns, the tx is durable — a crash mid-apply
     *  redoes the remainder on recovery. */
    NvStatus txCommit(ThreadCtx &ctx);

    /** Abort: roll every staged op back (restore words, free staged
     *  allocations), then journal an abort record. */
    NvStatus txAbort(ThreadCtx &ctx);

    TxManager &txManager() { return tx_mgr_; }
    const TxManager &txManager() const { return tx_mgr_; }

    /** The stats.tx.* family plus live staged/open gauges as a JSON
     *  object, for nvalloc_fsck --json and nvalloc_stat --tx. */
    std::string txJson() const;

    /** C-API helper: record a tx call rejected before a ThreadCtx even
     *  exists (degraded-open heap) so nvalloc_errno reads EINVAL. */
    NvStatus txRejected();

    // ---- roots & helpers --------------------------------------------

    /** One of kNumGcRoots persistent pointer words in the superblock:
     *  both the natural attach target for application top-level
     *  structures and the root set of the GC variant's collector. */
    uint64_t *rootWord(unsigned idx);

    void *
    at(uint64_t off) const
    {
        return dev_.at(off);
    }

    uint64_t
    offsetOf(const void *p) const
    {
        return dev_.offsetOf(p);
    }

    PmDevice &device() { return dev_; }
    const NvAllocConfig &config() const { return cfg_; }
    const RecoveryInfo &lastRecovery() const { return recovery_; }

    // ---- degradation ------------------------------------------------

    /** Why the most recent failing operation failed (sticky, errno
     *  style: successful operations do not reset it). */
    NvStatus
    lastStatus() const
    {
        return last_status_.load(std::memory_order_relaxed);
    }

    /** Outcome of opening the heap: Ok, or CorruptMetadata when the
     *  superblock or log root failed validation — the heap is then in
     *  Failed mode and only read-only introspection works. */
    NvStatus openStatus() const { return open_status_; }

    /** Current degradation mode (normal → reclaiming → exhausted). */
    HeapMode
    mode() const
    {
        return mode_.load(std::memory_order_relaxed);
    }

    const DegradedStats &degradedStats() const { return deg_stats_; }

    // ---- health & containment (pool.h, DESIGN.md §12) ---------------

    /** Current health state. Serving unless the patrol scrubber is
     *  mid-walk (Scrubbing) or corruption was detected (Degraded /
     *  Quarantined). */
    HeapHealth
    health() const
    {
        return health_.load(std::memory_order_relaxed);
    }

    /**
     * Record detected corruption: transition the health machine upward
     * (never downward — Quarantined sticks until restoreHealth), bump
     * stats.health.escalations and notify the health hook (the owning
     * HeapPool). Called by the hardened-free pipeline (Degraded), the
     * patrol scrubber and the auditor (Quarantined), and recovery
     * (Quarantined on a failed open). Idempotent per state.
     */
    void escalateHealth(HeapHealth to, const char *reason);

    /**
     * After external repair (HeapAuditor::repair / nvalloc_fsck): run
     * a fresh audit; when clean, return the heap to Serving and
     * Ok — otherwise keep the current state and return
     * CorruptMetadata. The one sanctioned downward transition.
     */
    NvStatus restoreHealth();

    /** Pool subscription: called on every upward health transition,
     *  from the detecting thread — possibly under heap locks (the
     *  canary validator escalates from inside the arena lock), so the
     *  hook must record-and-return, never call back into the heap.
     *  Set before traffic starts; not synchronized against in-flight
     *  escalation. */
    using HealthHook = std::function<void(HeapHealth, const char *)>;
    void setHealthHook(HealthHook hook) { health_hook_ = std::move(hook); }

    /**
     * One bounded patrol-scrub batch (auditor.h): maintenance stage 5
     * calls this from its slice; tests and tools may drive it
     * directly. Publishes Scrubbing while walking, feeds
     * stats.scrub.*, and escalates stable findings. Returns the number
     * of metadata items examined.
     */
    unsigned patrolSlice();

    const ScrubStats &scrubStats() const { return scrub_stats_; }
    const HealthStats &healthStats() const { return health_stats_; }

    /** Health + scrub state as a JSON object (nvalloc_stat --health,
     *  per-heap objects in nvalloc_fsck --json --pool). */
    std::string healthJson() const;

    /** True if recovery quarantined the slab at device offset `off`
     *  (this run or any earlier one — the list is persistent). */
    bool isQuarantined(uint64_t off) const;

    /** The persistent quarantine list: slabs whose headers could not
     *  be trusted after a crash. Their 64 KB is deliberately leaked. */
    std::vector<uint64_t> quarantinedSlabs() const;

    /** Device offset of thread slot `slot`'s WAL ring (fault-injection
     *  tests corrupt entries through this). */
    uint64_t
    walRingOffset(unsigned slot) const
    {
        return sb_->wal_off + uint64_t(slot) * kWalRingBytes;
    }

    // ---- maintenance ------------------------------------------------

    /** The background maintenance service (DESIGN.md §8). In Manual
     *  mode, drive it with maintenance().step(); pin()/PinGuard defer
     *  slow GC while a log-entry reference is held. */
    MaintenanceService &maintenance() { return maint_; }
    const MaintenanceService &maintenance() const { return maint_; }

    /** String-dispatched maintenance control, shared by the ctl
     *  surface ("maintenance.pause" etc. via ctlRead), the C API and
     *  nvalloc_stat: action is "pause", "resume", "step" or "wake".
     *  Returns InvalidArgument — without touching lastStatus() — for
     *  anything else. */
    NvStatus maintenanceControl(const char *action);

    // ---- hardening --------------------------------------------------

    /** The heap-hardening subsystem (hardening.h, DESIGN.md §9):
     *  guard-sampling state, the delayed-reuse quarantine, detection
     *  counters and retained CorruptionReports. */
    HardeningManager &hardening() { return hardening_; }
    const HardeningManager &hardening() const { return hardening_; }

    /** Does this heap currently own an allocation at `off` (a slab
     *  block area or an activated extent)? Lock-free and best-effort;
     *  the cross-heap free classifier probes other heaps with it. */
    bool ownsOffset(uint64_t off) const;

    // ---- KV service mount point -------------------------------------

    /**
     * Attach/detach the stats block of a KvStore (src/kv/) living on
     * this heap, surfacing its counters as the stats.kv.* ctl subtree.
     * One store per heap is the expected shape; a second attach simply
     * replaces the pointer. Detach compare-and-swaps so a store never
     * unhooks a successor's block. The registry reads through the
     * atomic pointer and reports zeros while nothing is attached.
     */
    void
    attachKvStats(const KvStats *s)
    {
        kv_stats_.store(s, std::memory_order_release);
    }

    void
    detachKvStats(const KvStats *s)
    {
        const KvStats *cur = s;
        kv_stats_.compare_exchange_strong(cur, nullptr);
    }

    const KvStats *
    kvStats() const
    {
        return kv_stats_.load(std::memory_order_acquire);
    }

    // ---- telemetry / introspection ----------------------------------

    /** The heap's sharded runtime counters and event tracer. */
    Telemetry &telemetry() { return tel_; }
    const Telemetry &telemetry() const { return tel_; }

    /**
     * mallctl-style introspection: read the statistic registered
     * under the dotted `name` ("stats.arena.0.flush.reflush",
     * "stats.tcache.hit", ...). Returns UnknownCtl — without touching
     * lastStatus() — when no such name exists. The registry is built
     * lazily on first use; names are discoverable via ctl().names().
     */
    NvStatus ctlRead(const char *name, uint64_t *out);

    /** The full dotted-name registry (read-only; for enumeration). */
    const CtlRegistry &ctl();

    /** Whole-heap statistics snapshot as nested JSON. */
    std::string statsJson();

    /** Heap-wide lock-free fast-path counters (stats.fastpath.*). */
    const FastPathStats &fastPathStats() const { return fp_stats_; }

    /** The stats.fastpath.* family as a JSON object, for
     *  nvalloc_stat --fastpath and nvalloc_fsck --json. */
    std::string fastpathJson() const;

    /** WAL commits since open: the sum of every thread ring's append
     *  sequence, plus the rings of threads that have since detached
     *  (the slot's sequence restarts on reattach). Exposed by ctl as
     *  "stats.wal.commits"; derived here instead of counted on the
     *  allocation fast path. */
    uint64_t walCommits();

    LargeAllocator &large() { return large_; }
    BookkeepingLog &bookkeepingLog() { return log_; }
    Arena &arena(unsigned i) { return *arenas_[i]; }
    unsigned numArenas() const { return unsigned(arenas_.size()); }
    RadixTree &slabRadix() { return slab_radix_; }

    /** Slab utilisation histogram for the Fig. 15(b) breakdown:
     *  bucket 0: 0-30%, 1: 30-70%, 2: 70-100% occupancy; returns
     *  bytes of slab space per bucket. */
    std::array<uint64_t, 3> slabUtilizationBytes();

    /**
     * Internal collection (NVAlloc-IC, and available in every
     * variant): enumerate all currently allocated objects —
     * fn(offset, size, is_small). The persistent analogue of PMDK's
     * POBJ_FIRST/POBJ_NEXT: with it, applications never lose a
     * reference to an allocated object even without attach words.
     */
    void forEachAllocated(
        const std::function<void(uint64_t, size_t, bool)> &fn);

  private:
    PmDevice &dev_;
    NvAllocConfig cfg_;
    NvSuperblock *sb_;
    uint64_t *region_table_;
    unsigned region_slots_;

    // Declared before every subsystem that records into it so it is
    // destroyed last; also the device model's FlushSink while this
    // heap is open.
    Telemetry tel_;

    BookkeepingLog log_;
    LargeAllocator large_;
    RadixTree slab_radix_;
    // Declared before the arenas, which hold a pointer into it.
    FastPathStats fp_stats_;
    std::vector<std::unique_ptr<Arena>> arenas_;

    std::mutex attach_mutex_;
    std::vector<ThreadCtx *> ctxs_;
    std::vector<bool> wal_slot_used_;
    uint64_t wal_retired_commits_ = 0; //!< guarded by attach_mutex_
    unsigned attach_cursor_ = 0;
    std::atomic<unsigned> attached_threads_{0};

    RecoveryInfo recovery_;
    bool crashed_ = false;

    // Degradation state (status.h).
    std::atomic<NvStatus> last_status_{NvStatus::Ok};
    std::atomic<HeapMode> mode_{HeapMode::Normal};
    NvStatus open_status_ = NvStatus::Ok;
    bool open_failed_ = false;
    DegradedStats deg_stats_;

    // Health machine + patrol scrub state (DESIGN.md §12). The cursor
    // is guarded by patrol_mu_: stage 5 runs under the maintenance
    // slice lock, but tests/tools may call patrolSlice() directly.
    std::atomic<HeapHealth> health_{HeapHealth::Serving};
    HealthStats health_stats_;
    HealthHook health_hook_;
    std::mutex patrol_mu_;
    PatrolCursor patrol_cursor_;
    ScrubStats scrub_stats_;

    // Hardening state (guard map, quarantine FIFO, detection
    // counters). Declared after the arenas/large allocator it
    // references; its destructor only frees DRAM — the quarantine is
    // drained explicitly in ~NvAlloc while the arenas still exist.
    HardeningManager hardening_;

    // Transaction bookkeeping (tx.h): open ids, the staged-offset
    // registry the free validator probes, stats.tx.* counters.
    TxManager tx_mgr_;

    // The attached KV store's counter block (kv_stats.h); null while
    // no store is mounted on this heap.
    std::atomic<const KvStats *> kv_stats_{nullptr};

    // Dotted-name registry, built on first ctl use (stats.cc); the
    // ~330 readers are not worth constructing for heaps that are
    // never introspected.
    std::once_flag ctl_once_;
    CtlRegistry ctl_;
    void buildCtlRegistry();

    // Declared last so it is destroyed first; the destructor also
    // shuts it down explicitly before touching any other subsystem.
    MaintenanceService maint_;

    friend class HeapAuditor;
    // The pool records an options-mismatch refusal on the existing
    // member's sticky status (failOp) without widening the public API.
    friend class HeapPool;

    /** All construction flows through open()/openOrDie() now; the old
     *  public two-step constructor is retired. */
    explicit NvAlloc(PmDevice &dev, NvAllocConfig cfg);

    bool logMode() const { return cfg_.consistency == Consistency::Log; }
    bool gcMode() const { return cfg_.consistency == Consistency::Gc; }
    bool usesBookkeepingLog() const { return cfg_.log_bookkeeping; }

    void createHeap();
    void recoverHeap();
    void quarantineSlab(uint64_t off);
    void replayWals();
    void conservativeGc();
    void clearWalRings();
    void setArenaStates(ArenaState state);
    VSlab *slabOf(uint64_t off) const;
    void drainTcache(ThreadCtx *ctx);
    void initMaintenance();
    void requestTcacheTrim();
    uint64_t allocSmall(ThreadCtx &ctx, size_t size, uint64_t where_off);
    uint64_t allocLarge(ThreadCtx &ctx, size_t size, uint64_t where_off);

    // Lock-free fast path (DESIGN.md §14).
    unsigned refillSmall(ThreadCtx &ctx, unsigned cls);
    bool tryFastFree(ThreadCtx &ctx, VSlab *slab, uint64_t off,
                     uint64_t *where, uint64_t where_off, NvStatus &st);

    // Hardening hooks (nvalloc.cc, hardening.h).
    size_t smallLimit() const;
    bool guardDue(ThreadCtx &ctx);
    uint64_t guardAlloc(ThreadCtx &ctx, size_t size, uint64_t where_off);
    NvStatus guardFree(ThreadCtx &ctx, uint64_t off, uint64_t *where,
                       uint64_t where_off);
    NvStatus rejectFree(uint64_t off, CorruptionKind kind);
    void stampCanary(uint64_t off, unsigned block_size);
    bool canaryOk(uint64_t off, unsigned block_size) const;
    void restampCanaries();

    // Transaction internals (tx.cc).
    void applyTxFree(uint64_t off);
    void undoTxAlloc(uint64_t off);
    void finishTx(ThreadCtx &ctx, bool committed);
    void resolveTxRun(uint64_t ring_off, uint32_t tx_id);
    void txRedoRun(const std::vector<WalEntry> &run);
    void txUndoRun(const std::vector<WalEntry> &run);

    void publish(uint64_t *where, uint64_t value);
    void reclaimMemory(ThreadCtx &ctx);
    bool refuseUnhealthy();
    uint64_t failAlloc();
    NvStatus failOp(NvStatus why);
    void setMode(HeapMode m);
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_NVALLOC_H
