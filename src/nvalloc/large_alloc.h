/**
 * @file
 * Large allocator: extents from 16 KB to 2 MB, plus direct mappings
 * above 2 MB (paper §2.2, §4.3, Fig. 7).
 *
 * Every extent is described by a virtual extent header (VEH) in DRAM.
 * VEHs live on one of three lists:
 *  - activated: allocated extents (and slabs);
 *  - reclaimed: free extents with committed physical memory;
 *  - retained: free extents whose physical memory was released but
 *    whose addresses remain reserved.
 * Free extents are additionally indexed by size (intrusive red-black
 * tree) for best-fit, and by address (radix tree) for O(1) lookup and
 * neighbour coalescing.
 *
 * A decay mechanism bounds free memory: each epoch the reclaimed list
 * may hold at most peak * smootherstep-decay bytes; overflow extents
 * are demoted to retained (decommit) and, a window later, returned to
 * the OS entirely when they span a whole region (paper §2.2, 50 ms
 * epochs, jemalloc parameters).
 *
 * Persistence of extent state is pluggable:
 *  - log-structured bookkeeping (paper §5.3): allocations append to
 *    the BookkeepingLog, frees tombstone; free space is re-derived
 *    from gaps at recovery;
 *  - in-place descriptors (Base / §3.3): every state change rewrites
 *    the extent's 64 B descriptor slot in its region's header area —
 *    the small random writes Fig. 2 visualizes.
 */

#ifndef NVALLOC_NVALLOC_LARGE_ALLOC_H
#define NVALLOC_NVALLOC_LARGE_ALLOC_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/lru_list.h"
#include "common/radix_tree.h"
#include "common/rbtree.h"
#include "common/smootherstep.h"
#include "nvalloc/bookkeeping_log.h"
#include "nvalloc/config.h"
#include "nvalloc/layout.h"
#include "nvalloc/status.h"
#include "nvalloc/vlock.h"
#include "pm/pm_device.h"

namespace nvalloc {

/** Virtual extent header (volatile). */
struct Veh
{
    uint64_t off = 0;
    uint64_t size = 0;

    enum class State : uint8_t { Activated, Reclaimed, Retained };
    State state = State::Reclaimed;
    bool is_slab = false;
    bool is_direct = false; //!< own >2 MB region, unmapped on free

    LogEntryRef log_ref;   //!< live while activated (log mode)
    uint64_t desc_off = 0; //!< descriptor slot (in-place mode)
    uint64_t freed_at = 0; //!< virtual time of the last free
    /** Bumped on every activation: lets deferred checks over reclaimed
     *  memory (the hardening guard watch) tell "still the same free
     *  life" apart from "reused and freed again since". */
    uint64_t reuse_epoch = 0;

    RbNode size_node;  //!< reclaimed/retained best-fit index
    LruLink list_link; //!< membership in the state's list
};

class LargeAllocator
{
  public:
    struct Stats
    {
        uint64_t allocations = 0;
        uint64_t frees = 0;
        uint64_t splits = 0;
        uint64_t coalesces = 0;
        uint64_t regions_mapped = 0;
        uint64_t regions_unmapped = 0;
        uint64_t demotions = 0; //!< reclaimed -> retained
        uint64_t evictions = 0; //!< retained -> OS
    };

    LargeAllocator() = default;
    ~LargeAllocator();

    /**
     * @param log      bookkeeping log, or nullptr for in-place mode
     * @param region_table persistent array of region offsets (in the
     *                 superblock) with `region_slots` entries
     */
    void init(PmDevice *dev, const NvAllocConfig &cfg, BookkeepingLog *log,
              uint64_t *region_table, unsigned region_slots);

    /**
     * Pre-durability hook for allocate(): invoked with the chosen
     * extent's offset immediately before the extent's own durability
     * point (the bookkeeping-log append, or the descriptor write in
     * in-place mode), so the caller can journal the allocation first.
     * Ordering the journal entry before the extent's record means a
     * crash between the two leaves a WAL intent recovery can undo —
     * never an activated extent no journal knows about.
     */
    using PreLogHook = std::function<void(uint64_t off)>;

    /**
     * Allocate an extent of exactly `size` bytes (rounded up to the
     * 16 KB extent grain; sizes above 2 MB get a direct region).
     * Returns the device offset, or 0 if the device is exhausted.
     * When `pre_log` is set it runs once per attempt that reached an
     * extent; on a 0 return the caller must unwind whatever the hook
     * journalled (the extent itself was returned to the free lists).
     */
    uint64_t allocate(uint64_t size, bool is_slab,
                      const PreLogHook &pre_log = {});

    /** Free the extent starting at `off` (must be a start address). */
    void free(uint64_t off);

    /** VEH owning `off`, or nullptr. */
    Veh *
    findVeh(uint64_t off) const
    {
        return static_cast<Veh *>(rtree_.get(off));
    }

    /** Run decay demotions now (also runs opportunistically). */
    void decayTick();

    /**
     * Exhaustion slow path: force a bookkeeping-log slow GC (log mode)
     * and a decay pass under the allocator lock, so a retry can reuse
     * whatever space tombstoned entries and demoted extents pin.
     */
    void reclaim();

    // ---- maintenance hooks (maintenance.h) ------------------------
    // Granular versions of reclaim()'s work, each taking the
    // allocator lock itself so the maintenance service can run them
    // from any thread in bounded units.

    /**
     * One log-GC unit under the lock: a fast-GC pass always, plus a
     * slow GC when `want_slow`. Returns true if anything was freed or
     * compacted; *ran_slow reports whether the slow GC actually ran
     * (it declines when the region cannot hold a survivor copy), and
     * *gc_ns the log's Stats.gc_ns growth — the virtual time this call
     * put on the calling (maintenance) thread's clock, read under the
     * lock so concurrent inline GCs cannot tear it.
     */
    bool maintainLog(bool want_slow, bool *ran_slow,
                     uint64_t *gc_ns = nullptr);

    /** One decay tick under the lock. */
    void decayPass();

    /**
     * Scrub up to `max_lines` media-poisoned lines that lie outside
     * every live region and outside every `keep` range (offset, len):
     * zero the line, persist, clear the poison flag. Runs under the
     * lock so no region can be mapped over a line mid-scrub. Returns
     * the number of lines scrubbed. Poison *inside* live regions is
     * left for the auditor's full classification.
     */
    unsigned scrubUnmappedPoison(
        unsigned max_lines,
        const std::vector<std::pair<uint64_t, uint64_t>> &keep);

    /**
     * Hardening probe (hardening.h): if the extent at `off` is still
     * a Reclaimed extent of exactly `size` bytes, verify that its
     * first `check_bytes` bytes all hold `expect` and return 0 (fill
     * intact) or 1 (fill dirtied — a use-after-free wrote into it).
     * Returns -1 when the extent was already reused, coalesced or
     * decommitted (nothing can be concluded). Runs under the allocator
     * lock so the extent cannot be handed back out mid-check.
     */
    int verifyReclaimedFill(uint64_t off, uint64_t size, uint64_t epoch,
                            uint64_t check_bytes, uint8_t expect);

    /** The extent's reuse epoch if `off` heads a reclaimed extent,
     *  ~0ULL otherwise. Pairs with verifyReclaimedFill: capture at
     *  free time, pass back at check time. */
    uint64_t reclaimedEpoch(uint64_t off);

    /** Why the last allocate() returned 0 (Ok if none failed yet). */
    NvStatus
    lastFailure() const
    {
        return last_failure_.load(std::memory_order_relaxed);
    }

    // ---- recovery hooks -------------------------------------------

    /** Recreate an activated VEH from a replayed log entry. */
    Veh *adoptActivated(uint64_t off, uint64_t size, bool is_slab,
                        LogEntryRef ref);

    /** Adopt regions from the persistent region table and turn every
     *  gap between activated extents into a reclaimed extent. */
    void rebuildFreeSpace();

    /** In-place mode recovery: scan every region's descriptor slots.
     *  Calls on_slab(off, size) for each allocated slab so the caller
     *  can rebuild vslabs. */
    void recoverFromDescriptors(
        const std::function<void(uint64_t, uint64_t)> &on_slab);

    /** Iterate all activated VEHs (recovery GC sweep, stats). */
    template <typename Fn>
    void
    forEachActivated(Fn &&fn)
    {
        for (Veh *veh = activated_list_.front(); veh;
             veh = activated_list_.next(veh)) {
            fn(veh);
        }
    }

    /** Iterate every VEH on all three state lists (audit). */
    template <typename Fn>
    void
    forEachVeh(Fn &&fn)
    {
        for (Veh *v = activated_list_.front(); v;
             v = activated_list_.next(v))
            fn(v);
        for (Veh *v = reclaimed_list_.front(); v;
             v = reclaimed_list_.next(v))
            fn(v);
        for (Veh *v = retained_list_.front(); v;
             v = retained_list_.next(v))
            fn(v);
    }

    /** Iterate live regions as (start offset, total size) (audit). */
    template <typename Fn>
    void
    forEachRegion(Fn &&fn) const
    {
        for (const auto &[off, size] : regions_)
            fn(off, size);
    }

    /** The allocator lock. The patrol scrubber (auditor.h) takes it
     *  for bounded log-chain walks so GC cannot rewrite the chain
     *  mid-check; everything else locks through the member functions. */
    VLock &lock() { return lock_; }

    const Stats &stats() const { return stats_; }
    uint64_t activatedBytes() const { return activated_bytes_; }
    uint64_t reclaimedBytes() const { return reclaimed_bytes_; }
    uint64_t retainedBytes() const { return retained_bytes_; }

  private:
    using SizeTree = RbTree<Veh, offsetof(Veh, size_node)>;
    using VehList = LruList<Veh, offsetof(Veh, list_link)>;

    PmDevice *dev_ = nullptr;
    NvAllocConfig cfg_;
    BookkeepingLog *log_ = nullptr;

    RadixTree rtree_;
    SizeTree reclaimed_tree_;
    SizeTree retained_tree_;
    VehList activated_list_;
    VehList reclaimed_list_; //!< LRU by freed_at
    VehList retained_list_;

    uint64_t activated_bytes_ = 0;
    uint64_t reclaimed_bytes_ = 0;
    uint64_t retained_bytes_ = 0;
    uint64_t reclaimed_peak_ = 0;
    uint64_t decay_epoch_start_ = 0;

    uint64_t *region_table_ = nullptr;
    unsigned region_slots_ = 0;

    /** Live regions: start offset -> total size (incl. header area). */
    std::map<uint64_t, uint64_t> regions_;

    // In-place mode: free descriptor slots per region.
    std::unordered_map<uint64_t, std::vector<unsigned>> desc_free_;

    VLock lock_;
    std::atomic<uint64_t> global_vnow_{0};

    Stats stats_;
    std::atomic<NvStatus> last_failure_{NvStatus::Ok};

    Veh *bestFit(SizeTree &tree, uint64_t size);
    Veh *newRegion();
    uint64_t allocateDirect(uint64_t size, const PreLogHook &pre_log);
    bool activate(Veh *veh, bool is_slab, const PreLogHook &pre_log);
    void retire(Veh *veh);
    Veh *splitFront(Veh *veh, uint64_t size);
    Veh *coalesce(Veh *veh);
    void demote(Veh *veh);
    void evict(Veh *veh);
    void removeFree(Veh *veh);
    void insertFree(Veh *veh, Veh::State state);

    void persistState(Veh *veh);
    void descriptorWrite(Veh *veh, uint32_t state);
    void descriptorRelease(Veh *veh);
    uint64_t regionOf(uint64_t off) const;
    bool regionTableAdd(uint64_t region_off, uint64_t size);
    void regionTableRemove(uint64_t region_off);

    void chargeSearch(unsigned steps);
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_LARGE_ALLOC_H
