#include "nvalloc/maintenance.h"

#include <chrono>

#include "nvalloc/bookkeeping_log.h"
#include "nvalloc/large_alloc.h"
#include "pm/pm_device.h"
#include "pm/vclock.h"
#include "telemetry/telemetry.h"

namespace nvalloc {

MaintenanceService::~MaintenanceService()
{
    shutdown();
}

void
MaintenanceService::init(Wiring wiring, const NvAllocConfig &cfg)
{
    w_ = std::move(wiring);
    cfg_ = cfg;
    mode_ = cfg.maintenance_mode;
    wired_ = w_.large != nullptr;
}

void
MaintenanceService::start()
{
    if (mode_ != MaintenanceMode::Thread || !wired_)
        return;
    std::lock_guard<std::mutex> l(mu_);
    if (stop_ || running_)
        return;
    thread_ = std::thread(&MaintenanceService::threadMain, this);
    running_ = true;
}

void
MaintenanceService::shutdown()
{
    // Claim the thread object under mu_ so no other caller ever races
    // a join (std::thread is not safe for concurrent joinable()/join);
    // a second shutdown() moves an empty thread and is a no-op.
    std::thread worker;
    {
        std::lock_guard<std::mutex> l(mu_);
        stop_ = true;
        running_ = false;
        worker = std::move(thread_);
    }
    cv_.notify_all();
    done_cv_.notify_all();
    if (worker.joinable())
        worker.join();
}

void
MaintenanceService::pause()
{
    // Taking slice_mu_ both waits out an in-flight slice (the caller
    // observes quiescence) and orders that slice's writes before the
    // caller's subsequent unlocked reads; bumping the depth under the
    // lock means every later slice sees it at its own slice_mu_-held
    // check.
    std::lock_guard<std::mutex> g(slice_mu_);
    pause_depth_.fetch_add(1, std::memory_order_relaxed);
}

void
MaintenanceService::resume()
{
    // Dropping the depth under slice_mu_ gives the symmetric edge:
    // the pausing thread's reads happen-before the next slice's
    // writes via the mutex, not via the counter (a lock-free counter
    // handoff would leave the auditor's quiescent walk formally racing
    // the first post-resume slice).
    std::lock_guard<std::mutex> g(slice_mu_);
    pause_depth_.fetch_sub(1, std::memory_order_relaxed);
}

void
MaintenanceService::wake(MaintWakeReason reason)
{
    stats_.wakes.fetch_add(1, std::memory_order_relaxed);
    if (w_.tel)
        w_.tel->event(TraceOp::MaintWake, uint64_t(reason));
    if (mode_ != MaintenanceMode::Thread)
        return; // Manual mode: the harness drives step() itself
    {
        std::lock_guard<std::mutex> l(mu_);
        ++wake_pending_;
    }
    cv_.notify_all();
}

void
MaintenanceService::reclaimSync()
{
    stats_.wakes.fetch_add(1, std::memory_order_relaxed);
    if (w_.tel)
        w_.tel->event(TraceOp::MaintWake,
                      uint64_t(MaintWakeReason::Reclaim));

    if (mode_ == MaintenanceMode::Thread) {
        std::unique_lock<std::mutex> l(mu_);
        if (running_ && !stop_) {
            uint64_t target = forced_done_ + 1;
            force_pending_ = true;
            cv_.notify_all();
            done_cv_.wait(l,
                          [&] { return forced_done_ >= target || stop_; });
            if (forced_done_ >= target)
                return;
            // shutdown() raced the request; fall through and do the
            // work inline so the out-of-memory retry still observes a
            // reclamation attempt.
        }
    }

    // Manual mode (and Thread mode before start / after shutdown):
    // the deterministic path — one forced slice, caller's clock.
    runSlice(/*forced=*/true);
}

double
MaintenanceService::logOccupancy() const
{
    if (!w_.log)
        return 0.0;
    size_t max = w_.log->maxChunks();
    return max ? double(w_.log->activeChunks()) / double(max) : 0.0;
}

double
MaintenanceService::wakeLevel() const
{
    return cfg_.maintenance_wake_fraction * cfg_.log_gc_threshold;
}

bool
MaintenanceService::logHasGarbage() const
{
    // Slow GC copies every live entry, holding the allocator lock
    // while mutators accrue LockWait — it only pays off when the copy
    // would actually shrink the chunk list. Gate on the dead share of
    // the *current* log (not of capacity, like the append path's
    // inline trigger): a steady-state log whose live set compacts to
    // about as many chunks as it already occupies would otherwise be
    // rewritten on every wake, reclaiming nothing.
    if (!w_.log)
        return false;
    size_t slots = w_.log->activeChunks() * kLogEntriesPerChunk;
    return slots != 0 && w_.log->liveEntries() * 2 <= slots;
}

void
MaintenanceService::pollLogPressure()
{
    if (mode_ != MaintenanceMode::Thread || !wired_ || !w_.log)
        return;
    if (logOccupancy() < wakeLevel() || !logHasGarbage())
        return;
    // Edge trigger: one handoff per crossing; the latch re-arms when
    // the next slice completes.
    if (wake_armed_.exchange(true, std::memory_order_relaxed))
        return;

    stats_.wakes.fetch_add(1, std::memory_order_relaxed);
    if (w_.tel)
        w_.tel->event(TraceOp::MaintWake,
                      uint64_t(MaintWakeReason::LogPressure));

    // Synchronous handoff (see header): lend the worker this thread's
    // wall time so the slice actually runs, even on a host where the
    // worker is starved. The wait costs no virtual time, which is the
    // entire point — GC nanoseconds accrue on the worker's clock.
    // The wake is registered and the completion target read under ONE
    // mu_ critical section: posting the wake first (as wake() would)
    // lets the worker consume it and finish the slice before we read
    // slices_done_, leaving us waiting on a slice nobody will run
    // until the next timer tick.
    std::unique_lock<std::mutex> l(mu_);
    if (stop_ || !running_)
        return; // append-path inline GC remains the backstop
    ++wake_pending_;
    uint64_t target = slices_done_ + 1;
    cv_.notify_all();
    done_cv_.wait(l, [&] { return slices_done_ >= target || stop_; });
}

bool
MaintenanceService::runSlice(bool forced)
{
    if (!wired_)
        return false;

    std::lock_guard<std::mutex> g(slice_mu_);
    // Checked under slice_mu_ so pause()'s own slice_mu_ acquisition
    // is a real barrier: either pause() bumped pause_depth_ before we
    // took the lock (we see it and back off), or pause() blocks on
    // slice_mu_ until this slice completes. Checking before the lock
    // would let a slice that passed the check run to completion after
    // pause() already returned, breaking the quiescence guarantee the
    // auditor relies on.
    if (!forced && paused())
        return false;
    stats_.slices.fetch_add(1, std::memory_order_relaxed);

    const uint64_t t0 = VClock::now();
    const uint64_t budget = cfg_.maintenance_slice_ns;
    auto budget_left = [&] { return VClock::now() - t0 < budget; };
    bool did = false;

    // 1. Bookkeeping-log GC, paced by occupancy against the wake
    //    level (a fraction of the append path's own inline trigger,
    //    so background compaction normally wins the race). Fast GC is
    //    free of PM reads and always worth a pass; slow GC relocates
    //    live entries and therefore honours the pin epoch.
    if (w_.log) {
        bool want_slow =
            forced ||
            (logOccupancy() >= wakeLevel() && logHasGarbage());
        if (want_slow && pins_.load(std::memory_order_acquire) != 0) {
            stats_.deferred.fetch_add(1, std::memory_order_relaxed);
            want_slow = false;
        }
        bool ran_slow = false;
        uint64_t gc_ns = 0;
        if (w_.large->maintainLog(want_slow, &ran_slow, &gc_ns))
            did = true;
        stats_.log_fast_gc.fetch_add(1, std::memory_order_relaxed);
        if (ran_slow)
            stats_.log_slow_gc.fetch_add(1, std::memory_order_relaxed);
        if (gc_ns)
            stats_.gc_virtual_ns.fetch_add(gc_ns,
                                           std::memory_order_relaxed);
    }

    // 2. Extent decay: demote cooled reclaimed extents, evict
    //    whole-region retained ones (one tick per slice).
    if (forced || budget_left()) {
        w_.large->decayPass();
        stats_.decay_ticks.fetch_add(1, std::memory_order_relaxed);
    }

    // 3. Poison scrubbing, bounded per slice. Only clearly-dead lines
    //    (outside every live region and every protected range) are
    //    scrubbed here; classifying poison inside live regions needs
    //    the auditor's full walk and stays its job. The quarantine
    //    depth counts as pressure because quarantining correlates
    //    with media faults.
    if ((forced || budget_left()) && w_.dev &&
        (w_.dev->poisonedLineCount() > 0 ||
         (w_.quarantine_depth && w_.quarantine_depth() > 0))) {
        unsigned n = w_.large->scrubUnmappedPoison(
            cfg_.maintenance_scrub_lines, w_.protected_ranges);
        if (n) {
            did = true;
            stats_.scrubbed_lines.fetch_add(n,
                                            std::memory_order_relaxed);
        }
    }

    // 4. Cooperative tcache trimming under failed-alloc pressure:
    //    tcaches are thread-private, so the service only raises a flag
    //    each owner honours on its next cold path.
    uint64_t failed = w_.failed_allocs ? w_.failed_allocs() : 0;
    if ((forced || failed > last_failed_allocs_) && w_.request_trim) {
        w_.request_trim();
        stats_.trim_requests.fetch_add(1, std::memory_order_relaxed);
    }
    last_failed_allocs_ = failed;

    // 5. Online patrol scrub: one bounded batch of the heap's
    //    incremental metadata walk (superblock / region table / slabs
    //    / log chain, auditor.h) against the live mutator. The batch
    //    is item-bounded by cfg_.patrol_items, keeping the vlock hold
    //    times inside the slice budget; findings escalate to the heap
    //    health machine inside the callback.
    if ((forced || budget_left()) && w_.patrol && cfg_.patrol_scrub) {
        if (w_.patrol()) {
            did = true;
            stats_.patrol_slices.fetch_add(1,
                                           std::memory_order_relaxed);
        }
    }

    wake_armed_.store(false, std::memory_order_relaxed);
    uint64_t spent = VClock::now() - t0;
    stats_.virtual_ns.fetch_add(spent, std::memory_order_relaxed);
    if (w_.tel)
        w_.tel->event(TraceOp::MaintSlice, spent);
    return did;
}

void
MaintenanceService::threadMain()
{
    // The worker owns its virtual clock: GC time accrues here, not on
    // the allocating threads (the fig17 foreground-vs-background
    // comparison measures exactly this split).
    VClock::reset();

    std::unique_lock<std::mutex> l(mu_);
    for (;;) {
        if (!stop_ && !force_pending_ && wake_pending_ == 0) {
            if (cfg_.maintenance_interval_ms == 0) {
                l.unlock();
                std::this_thread::yield();
                l.lock();
            } else {
                cv_.wait_for(
                    l,
                    std::chrono::milliseconds(
                        cfg_.maintenance_interval_ms),
                    [&] {
                        return stop_ || force_pending_ ||
                               wake_pending_ != 0;
                    });
            }
        }
        if (stop_)
            break;
        bool forced = force_pending_;
        force_pending_ = false;
        wake_pending_ = 0;
        l.unlock();

        runSlice(forced);

        l.lock();
        ++slices_done_;
        if (forced)
            ++forced_done_;
        done_cv_.notify_all();
    }
}

} // namespace nvalloc
