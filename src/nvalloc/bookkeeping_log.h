/**
 * @file
 * Log-structured bookkeeping for large allocations (paper §5.3, Fig. 8).
 *
 * Instead of updating extent headers in place (small random writes all
 * over the heap, §3.3), every extent state change appends an 8-byte
 * entry to a persistent log: sequential writes, fixed entry size, no
 * data copying. The log region is divided into chunks of 128 entries;
 * a volatile vchunk per chunk carries a validity bitmap and the DRAM
 * back-pointers needed to relocate entries during GC. Active chunks
 * form a persistent singly-linked list published by a log header with
 * two head pointers and an `alt` bit, so slow GC can build a fresh
 * list and switch over with one atomic bit flip.
 *
 * Fast GC frees chunks whose bitmap is empty (no PM reads). Slow GC
 * copies live entries into a new list, dropping tombstones, when the
 * log file grows past a usage threshold.
 *
 * Entries are placed inside a chunk through the interleaved mapping so
 * that consecutive appends do not re-flush the same line (§5.3:
 * "similar to the method in Section 5.1").
 */

#ifndef NVALLOC_NVALLOC_BOOKKEEPING_LOG_H
#define NVALLOC_NVALLOC_BOOKKEEPING_LOG_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rbtree.h"
#include "nvalloc/interleave.h"
#include "nvalloc/layout.h"
#include "pm/pm_device.h"
#include "telemetry/telemetry.h"

namespace nvalloc {

/** Stable handle to a live log entry (chunk activation id + slot). */
struct LogEntryRef
{
    uint32_t chunk_id = 0;
    uint32_t slot = 0;

    bool valid() const { return chunk_id != 0; }
};

class BookkeepingLog
{
  public:
    /** Called when slow GC moves a live entry: lets the owner (a VEH)
     *  update its stored LogEntryRef. */
    using RelocateFn = std::function<void(void *owner, LogEntryRef ref)>;

    struct Stats
    {
        uint64_t appends = 0;
        uint64_t tombstones = 0;
        /** The GC counters are written under the large-allocator lock
         *  (by the maintenance worker in Thread mode as well as by
         *  mutator inline GC) but read lock-free by the ctl tree and
         *  by tests, hence atomic; relaxed ordering suffices for
         *  monotonic counters. The replay counters stay plain: they
         *  are written only during single-threaded open/replay. */
        std::atomic<uint64_t> fast_gcs{0};
        std::atomic<uint64_t> slow_gcs{0};
        std::atomic<uint64_t> entries_copied{0};
        /** Virtual ns spent inside fast/slow GC passes, accrued on
         *  whichever thread ran them (mutator inline vs. maintenance
         *  service — the fig17 foreground/background split). */
        std::atomic<uint64_t> gc_ns{0};
        uint64_t replay_entries_rejected = 0; //!< bad fold csum/poison
        uint64_t replay_chunks_rejected = 0;  //!< bad header crc/poison
    };

    BookkeepingLog() = default;
    ~BookkeepingLog();

    /**
     * Bind to the log region. `create` formats a fresh header;
     * otherwise the persistent chunk list is adopted (recovery path —
     * call replay() afterwards to enumerate live entries). Returns
     * false if an existing header fails validation (bad magic, crc,
     * poison, or structurally impossible fields): the header is the
     * log's single root, so the caller must treat the heap as
     * unopenable rather than guess at chunk locations.
     */
    bool attach(PmDevice *dev, uint64_t region_off, size_t region_bytes,
                bool interleaved, bool flush_enabled, double gc_threshold,
                bool create, bool verify = true);

    /** Append a normal or slab entry; `owner` is the volatile object
     *  (VEH) to notify on relocation. Returns an invalid ref if the
     *  log region is exhausted even after GC. */
    LogEntryRef append(LogType type, uint64_t ext_off, uint64_t size,
                       void *owner);

    /** Mark `target` dead: appends a tombstone entry and clears the
     *  target's validity bit in its vchunk. */
    void tombstone(LogEntryRef target);

    void setRelocateFn(RelocateFn fn) { relocate_ = std::move(fn); }

    /** Force a slow GC (also used by recovery to drop tombstones).
     *  Returns false — without touching any state — when the region
     *  cannot hold a full copy of the surviving entries. */
    bool slowGc();

    /**
     * Recovery: walk every live entry of the published chunk list in
     * append order, invoking fn(type, ext_off, size, ref). Rebuilds
     * all volatile state (vchunks, free list) as a side effect.
     */
    void replay(const std::function<void(LogType, uint64_t, uint64_t,
                                         LogEntryRef)> &fn);

    /** Let the owner of a replayed entry be registered for GC. */
    void setOwner(LogEntryRef ref, void *owner);

    const Stats &stats() const { return stats_; }

    /** Lock-free occupancy snapshots: the maintenance service polls
     *  these from mutator threads (pollLogPressure), hence atomic. */
    size_t
    activeChunks() const
    {
        return active_count_.load(std::memory_order_relaxed);
    }
    size_t
    liveEntries() const
    {
        return live_entries_.load(std::memory_order_relaxed);
    }

    /** Region capacity in chunks (fixed after attach). */
    size_t maxChunks() const { return max_chunks_; }

    double gcThreshold() const { return gc_threshold_; }

    /** Run one fast-GC pass (free chunks whose bitmap is empty; no PM
     *  reads, never relocates an entry). Must be called under the
     *  owner's lock, like append/tombstone — the maintenance service
     *  reaches it through LargeAllocator::maintainLog. */
    void collectFast() { fastGc(); }

    /** Mirror append/tombstone/GC events into the heap's telemetry
     *  (the local Stats struct keeps counting either way). */
    void setTelemetry(Telemetry *tel) { tel_ = tel; }

  private:
    struct VChunk
    {
        uint64_t chunk_off = 0;
        uint32_t id = 0;
        uint64_t bitmap[2] = {0, 0};
        unsigned live = 0;
        unsigned next_slot = 0; //!< logical append cursor
        void *owners[kLogEntriesPerChunk] = {};
        RbNode rb;      //!< active vchunks, keyed by id
        VChunk *next_free = nullptr;
    };

    using VChunkTree = RbTree<VChunk, offsetof(VChunk, rb)>;

    PmDevice *dev_ = nullptr;
    uint64_t region_off_ = 0;
    size_t region_bytes_ = 0;
    bool flush_ = true;
    bool verify_ = true; //!< checksum-verify chunks/entries on replay
    double gc_threshold_ = 0.5;
    InterleaveMap map_;
    LogHeader *header_ = nullptr;

    VChunkTree active_;       //!< by activation id
    VChunk *tail_ = nullptr;  //!< current append chunk
    VChunk *free_list_ = nullptr;
    std::atomic<size_t> active_count_{0};  //!< see activeChunks()
    std::atomic<size_t> live_entries_{0};  //!< see liveEntries()
    uint32_t next_id_ = 1;
    size_t carved_chunks_ = 0;
    size_t max_chunks_ = 0;

    RelocateFn relocate_;
    Stats stats_;
    Telemetry *tel_ = nullptr;

    LogChunk *chunkAt(const VChunk &vc) const
    {
        return static_cast<LogChunk *>(dev_->at(vc.chunk_off));
    }

    uint64_t chunkOffset(size_t index) const;
    void persistHeader();
    void persistChunkHeader(LogChunk *pc);
    bool ensureTail();
    VChunk *activateChunk(VChunk *list_tail, uint32_t list);
    VChunk *takeFreeChunk();
    void releaseChunk(VChunk *vc, VChunk *prev);
    void fastGc();
    void writeEntry(VChunk &vc, unsigned slot, uint64_t packed);
    void persistLine(const void *addr, size_t len);
    void freeAllVChunks();
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_BOOKKEEPING_LOG_H
