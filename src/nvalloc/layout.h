/**
 * @file
 * On-media (persistent) structures of NVAlloc.
 *
 * Everything in this header lives inside the emulated PM device and
 * must stay valid across crashes; all cross-structure references are
 * device offsets (or OffsetPtr), never raw pointers. Volatile mirrors
 * (vslab, vchunk, VEH) live in ordinary DRAM structs elsewhere.
 *
 * Heap geometry:
 *  - the device root area holds the NvSuperblock;
 *  - the heap grows in 4 MB regions; each region reserves its first
 *    64 KB as a header area holding in-place extent descriptors (used
 *    by the Base configuration; the log-structured configuration
 *    leaves it idle so both modes see identical data layout);
 *  - slabs are 64 KB extents whose first 4 KB is the SlabHeader;
 *  - a WAL region provides one 1 KB ring per thread slot;
 *  - the bookkeeping log region holds LogChunks of 128 8-byte entries.
 */

#ifndef NVALLOC_NVALLOC_LAYOUT_H
#define NVALLOC_NVALLOC_LAYOUT_H

#include <cstddef>
#include <cstdint>

#include "common/checksum.h"
#include "common/size_classes.h"

namespace nvalloc {

constexpr uint64_t kSuperMagic = 0x4e56414c4c4f4321ULL; // "NVALLOC!"
constexpr uint32_t kSlabMagic = 0x534c4142;             // "SLAB"
constexpr uint64_t kLogMagic = 0x4e564c4f47484452ULL;   // "NVLOGHDR"

/** On-media format version. 2 added checksums on every persistent
 *  header (WAL entries, log chunks, slab headers, superblock) and the
 *  superblock quarantine list. 3 added the transaction fields of the
 *  WAL entry (tx_id/tx_mark under the crc) and the kWalTxData op. */
constexpr uint32_t kSuperVersion = 3;

constexpr size_t kRegionSize = 4 * 1024 * 1024;  //!< heap growth grain
constexpr size_t kRegionHeaderSize = 64 * 1024;  //!< in-place desc area
constexpr size_t kLargeMax = 2 * 1024 * 1024;    //!< above: direct map
constexpr size_t kExtentAlign = 16 * 1024;       //!< smallest extent

constexpr size_t kSlabHeaderSize = 4096;
constexpr unsigned kMaxSlabBlocks =
    (kSlabSize - kSlabHeaderSize) / 8; // 7680, smallest class is 8 B
constexpr size_t kSlabBitmapBytes = 2048; // fits 32 padded stripes
constexpr unsigned kIndexTableCap = 960;  // morph index_table entries

constexpr unsigned kMaxArenas = 64;
constexpr unsigned kMaxThreads = 128;
constexpr unsigned kNumGcRoots = 8;

/** Arena lifecycle flag (paper §4.4). */
enum class ArenaState : uint32_t
{
    Idle = 0,
    Running = 1,
    NormalShutdown = 2,
    Recovering = 3,
};

/**
 * Persistent slab header (paper §2.2, §5.2 / Fig. 5).
 *
 * flag encodes the morph step: 0 = regular slab (or slab_in after all
 * three steps — old_* fields are then live iff index_count > 0 is
 * still being tracked by the volatile cnt_slab), 1..3 = morph in
 * progress, crashed mid-transformation ⇒ undo (flag ≤ 2) or roll
 * forward (flag 3).
 *
 * Word-tearing discipline: a power cut may persist any subset of this
 * line's 8-byte words (x86 atomicity floor), so no morph step may need
 * two words of the same epoch to land together. size_class shares its
 * word with flag (they change together in step 3 and are therefore
 * atomic), the staged old/new geometry fields are fenced before the
 * step-3 epoch starts, and the crc covers only the adoption-trusted
 * quintuple so steps 1/2 and finishMorph never touch a crc-covered
 * word. Recovery repairs a torn step 3 from the staging fields.
 */
struct SlabHeader
{
    uint32_t magic;
    uint16_t size_class;
    uint16_t flag;
    uint32_t data_offset;      //!< slab-relative start of blocks
    uint16_t capacity;         //!< number of blocks
    uint16_t stripes;          //!< bitmap stripes in use
    uint16_t old_size_class;
    uint16_t old_data_offset_k; //!< old data offset (always header size)
    uint16_t index_count;      //!< live entries in index_table
    uint16_t old_capacity;
    uint32_t crc;              //!< crc32c, see slabGeometryCrc()
    uint16_t old_stripes;      //!< staged: pre-morph stripe count
    uint16_t new_size_class;   //!< staged: morph target class
    uint16_t new_stripes;      //!< staged: morph target stripes
    uint8_t pad0[30];          //!< pad fixed fields to one cache line

    /** Interleaved allocation bitmap; bit = 1 ⇒ block allocated. */
    uint8_t bitmap[kSlabBitmapBytes];

    /**
     * Morph index table (paper Fig. 5): entry i describes the i-th
     * surviving block_before: bits [14:0] its block index in the old
     * geometry, bit 15 its state (1 = allocated, 0 = freed since).
     */
    uint16_t index_table[kIndexTableCap];

    uint8_t pad1[kSlabHeaderSize - 64 - kSlabBitmapBytes -
                 kIndexTableCap * 2];
};

static_assert(sizeof(SlabHeader) == kSlabHeaderSize);

/**
 * Checksum of the adoption-trusted geometry quintuple — magic,
 * size_class, data_offset, capacity, stripes — with flag zeroed.
 *
 * Deliberately excluded:
 *  - the bitmap: bits are flushed one line at a time on the allocation
 *    fast path, and WAL replay already covers a torn bit;
 *  - flag and the morph staging fields (old_*, new_*, index_table):
 *    they change under the flag-step undo/redo protocol, and covering
 *    them would make every setFlag a multi-word update that 8-byte
 *    tearing could split into a false corruption. With this scope,
 *    only morph step 3 changes a crc-covered word, and recovery can
 *    validate a torn step 3 against the staged old/new quintuples
 *    (headerLooksValid) and repair it from the same staging.
 */
inline uint32_t
slabGeometryCrc(uint16_t cls, uint16_t capacity, uint16_t stripes)
{
    const struct
    {
        uint32_t magic;
        uint16_t size_class;
        uint16_t flag;
        uint32_t data_offset;
        uint16_t capacity;
        uint16_t stripes;
    } q{kSlabMagic, cls, 0, uint32_t(kSlabHeaderSize), capacity, stripes};
    static_assert(sizeof(q) == 16);
    return crc32(&q, sizeof(q));
}

inline uint32_t
slabHeaderCrc(const SlabHeader &h)
{
    return slabGeometryCrc(h.size_class, h.capacity, h.stripes);
}

constexpr uint16_t kIndexAllocated = 0x8000;
constexpr uint16_t kIndexBlockMask = 0x7fff;

/**
 * In-place extent descriptor (Base configuration, §3.3): one 64 B slot
 * per extent in the owning region's header area. Random in-place
 * updates of these slots are exactly the access pattern Fig. 2 shows.
 */
struct ExtentDesc
{
    uint64_t offset;   //!< device offset of the extent (0 = slot free)
    uint64_t size;
    uint32_t state;    //!< 1 = allocated, 2 = free (reclaimed)
    uint32_t is_slab;
    uint8_t pad[40];
};

static_assert(sizeof(ExtentDesc) == 64);

constexpr unsigned kDescsPerRegion = kRegionHeaderSize / sizeof(ExtentDesc);

/**
 * WAL entry (one cache line): journal of one in-flight malloc/free.
 * Only the newest entry of a ring can describe an incomplete operation
 * (threads are synchronous), so appending entry k+1 implicitly commits
 * entry k; replay inspects the highest-sequence entry and decides
 * completion by checking whether the user's attach word holds the
 * block offset.
 *
 * The crc covers the payload words, including the transaction tag. A
 * torn or poisoned entry fails verification and replay treats it as
 * uncommitted: the operation it described never finished, so it is
 * undone, never replayed forward from garbage.
 *
 * Transactions (DESIGN.md §11) reuse the same entries: a tx op carries
 * the owning transaction id in tx_id (0 = non-transactional, the
 * entire fast path), and the tx layer's control records — the single
 * commit record, and the abort record written after a live rollback —
 * are entries with op kWalTxData and tx_mark kWalTxCommit/kWalTxAbort.
 * kWalTxData entries with tx_mark kWalTxOp journal an 8-byte undo/redo
 * word write: block_op holds the target offset, where_off the old
 * (undo) value and size the new (redo) value.
 *
 * Sized to exactly one line so an entry can never straddle two lines:
 * the append stays a single flush and a torn persist cannot split one
 * entry across independently-landing lines.
 */
struct WalEntry
{
    uint64_t block_op;  //!< [63:2] block device offset, [1:0] op
    uint64_t seq;
    uint64_t where_off; //!< attach word's device offset (kWalNoWhere
                        //!< if the attach target is volatile); the old
                        //!< word value for kWalTxData writes
    uint64_t size;      //!< request size; the new word value for
                        //!< kWalTxData writes
    uint32_t tx_id;     //!< owning transaction (0 = not transactional)
    uint32_t tx_mark;   //!< WalTxMark role of a tx-tagged entry
    uint64_t crc;       //!< crc32c of the 40 payload bytes above
    uint8_t pad[kCacheLine - 48];
};

static_assert(sizeof(WalEntry) == kCacheLine);

inline uint32_t
walEntryCrc(const WalEntry &e)
{
    return crc32(&e, offsetof(WalEntry, crc));
}

enum WalOp : uint64_t
{
    kWalNone = 0,
    kWalAlloc = 1,
    kWalFree = 2,
    /** Transaction-layer entry: an undo/redo word write (tx_mark
     *  kWalTxOp) or a commit/abort control record. Never appears with
     *  tx_id == 0. */
    kWalTxData = 3,
};

/** Role of a tx-tagged WAL entry (tx_id != 0). */
enum WalTxMark : uint32_t
{
    kWalTxNone = 0,   //!< not transactional (tx_id == 0)
    kWalTxOp = 1,     //!< one alloc/free/write op of transaction tx_id
    kWalTxCommit = 2, //!< the commit record: tx_id is durable
    kWalTxAbort = 3,  //!< rollback of tx_id completed before the crash
    /** The commit's apply phase completed before the crash: recovery
     *  must not redo the run. Without this seal, the redo of an
     *  already-applied transaction could rewind a word (a KV bucket
     *  head, say) that a *later* committed transaction wrote — the
     *  same reason the abort record exempts a completed rollback from
     *  being undone again. */
    kWalTxApplied = 4,
};

constexpr uint64_t kWalNoWhere = ~uint64_t{0};

// 32 logical entries; the physical ring is 4 KB because stripe padding
// can inflate the footprint (S * ceil(32/S) physical slots, at most 64
// for any stripe count <= 32).
constexpr unsigned kWalRingEntries = 32;
constexpr size_t kWalRingBytes = 4096;

/**
 * Transaction size bound: ops per transaction, chosen so a tx's whole
 * WAL run — every op entry plus the commit/abort record — fits the
 * owning thread's ring without wrapping onto itself. The run is the
 * only rollback record there is, so an overwrite would be data loss.
 */
constexpr unsigned kTxMaxOps = kWalRingEntries - 2;

/** Bookkeeping log entry (8 B; paper §5.3): [63:62] type,
 *  [61:54] fold checksum, [53:26] addr in 4 KB units (covers a 1 TB
 *  device), [25:0] size in bytes.
 *  Tombstones reuse addr = target chunk id, size = target slot.
 *
 *  The checksum rides inside the word, so an entry append is still a
 *  single atomic 8-byte store. A zeroed word never verifies (the fold
 *  of 0 is 0xa5), which makes "first bad entry" double as "end of the
 *  densely-appended chunk" during replay. */
enum LogType : uint64_t
{
    kLogFree = 0,
    kLogNormal = 1,
    kLogSlab = 2,
    kLogTombstone = 3,
};

constexpr unsigned kLogCsumShift = 54;
constexpr uint64_t kLogCsumMask = 0xffULL << kLogCsumShift;

constexpr uint64_t
logEntryPack(LogType type, uint64_t addr_or_chunk, uint64_t size_or_slot)
{
    uint64_t raw = (uint64_t(type) << 62) |
                   ((addr_or_chunk & 0xfffffffULL) << 26) |
                   (size_or_slot & 0x3ffffffULL);
    return raw | (uint64_t(xorFold8(raw)) << kLogCsumShift);
}

constexpr LogType
logEntryType(uint64_t e)
{
    return LogType(e >> 62);
}

constexpr uint64_t
logEntryAddr(uint64_t e)
{
    return (e >> 26) & 0xfffffffULL;
}

constexpr uint64_t
logEntrySize(uint64_t e)
{
    return e & 0x3ffffffULL;
}

constexpr bool
logEntryChecksumOk(uint64_t e)
{
    return xorFold8(e & ~kLogCsumMask) ==
           uint8_t((e & kLogCsumMask) >> kLogCsumShift);
}

constexpr unsigned kLogEntriesPerChunk = 128;

/** Stripe count used inside log chunks when interleaving is on: 8 is
 *  the largest count whose padding still fits 128 entries in 1 KB and
 *  it pushes the same-line reuse distance to 7 (> reflush window). */
constexpr unsigned kLogChunkStripes = 8;
constexpr size_t kLogChunkDataBytes = kLogEntriesPerChunk * 8; // 1 KB

/**
 * Persistent log chunk: one header line + 1 KB of entries.
 *
 * Word-tearing discipline (cf. LogHeader): `next` is rewritten in
 * place when a successor chunk is linked, so it sits outside the crc —
 * covering it would pair that single-word update with a crc update in
 * another word, and a torn persist of the pair would invalidate this
 * chunk and its already-committed entries. A torn `next` on its own is
 * old-or-new by word atomicity; replay bounds-checks it before
 * following, and the successor validates itself with its own crc.
 */
struct LogChunk
{
    uint32_t id;
    uint32_t active;
    uint32_t crc;       //!< crc32c of {id, active}
    uint32_t pad0;
    uint64_t next;      //!< device offset of next active chunk (0 = end)
    uint8_t pad[40];
    uint64_t entries[kLogEntriesPerChunk];
};

static_assert(sizeof(LogChunk) == 64 + kLogChunkDataBytes);

inline uint32_t
logChunkCrc(const LogChunk &c)
{
    return crc32(&c, offsetof(LogChunk, crc));
}

/**
 * Persistent log file header (paper Fig. 8).
 *
 * The field order enforces a word-tearing discipline: under 8-byte
 * persist atomicity, every legitimate header mutation dirties exactly
 * one 8-byte word, so a crash can never leave the header in a state
 * that existed on neither side of the update.
 *
 *  - carving a chunk bumps num_chunks, which shares its word with the
 *    crc — the count and the checksum commit or tear together;
 *  - linking a list's first chunk rewrites one head[] word (fenced
 *    before anything that depends on the chunk);
 *  - the slow-GC publish flips the alt word alone.
 *
 * head[] and alt are deliberately outside the crc: including them
 * would pair each of those single-word updates with a crc update in a
 * different word, and a torn persist could then split payload from
 * checksum and turn a survivable crash into a fatal "corrupt header".
 * They are validated structurally instead — alt must be 0/1, and
 * replay bounds-checks every chain offset before following it.
 */
struct LogHeader
{
    uint64_t magic;
    uint32_t num_chunks; //!< chunks ever carved from the file
    uint32_t crc;        //!< crc32c of the 12 bytes above
    uint64_t head[2];    //!< offsets of the two chunk-list heads
    uint32_t alt;        //!< which head[] is live
    uint32_t pad;
};

inline uint32_t
logHeaderCrc(const LogHeader &h)
{
    return crc32(&h, offsetof(LogHeader, crc));
}

/**
 * Region-table entry codec. The superblock is followed (at root offset
 * 512) by an array of packed entries, one per live region: offset in
 * 4 KB units in the high bits, total size in 64 KB units in the low 28.
 * Shared here so the heap auditor can decode the table independently
 * of the large allocator's volatile state.
 */
constexpr uint64_t
packRegionEntry(uint64_t off, uint64_t size)
{
    return ((off >> 12) << 28) | (size >> 16);
}

constexpr uint64_t
regionEntryOff(uint64_t e)
{
    return (e >> 28) << 12;
}

constexpr uint64_t
regionEntrySize(uint64_t e)
{
    return (e & ((uint64_t{1} << 28) - 1)) << 16;
}

/** Slabs recovery refused to adopt (bad header after a crash +
 *  media fault). Their space is leaked deliberately — quarantined —
 *  instead of aborting the whole heap. */
constexpr unsigned kQuarantineSlots = 12;

/** Superblock anchored in the device root area. Must stay within 512
 *  bytes: the region table begins at root offset 512. */
struct NvSuperblock
{
    uint64_t magic;
    uint32_t version;
    uint32_t num_arenas;
    uint32_t stripes;
    uint32_t consistency; //!< 0 = LOG, 1 = GC

    uint64_t log_off;
    uint64_t log_bytes;
    uint64_t wal_off;     //!< kMaxThreads rings of kWalRingBytes

    uint64_t gc_roots[kNumGcRoots]; //!< device offsets, 0 = unset

    uint32_t arena_state[kMaxArenas];

    /** Device offsets of quarantined slabs (0 = empty slot). */
    uint64_t quarantine[kQuarantineSlots];
    uint32_t quarantine_count;

    /** crc32c of the config fields [8, 48): version..wal_off. The
     *  magic is excluded (it is published after the crc is in place);
     *  runtime-mutable fields (gc_roots, arena_state, quarantine) are
     *  excluded and protected by their own update protocols. */
    uint32_t sb_crc;

    /**
     * Hardening layout flags (hardening.h): bit 0 = per-block redzone
     * canaries are active on this image, i.e. the last 8 bytes of
     * every small block belong to the allocator, not the application.
     * Outside the crc so pre-hardening images (where this word is
     * zero — canaries off) verify unchanged; written once at
     * createHeap and adopted verbatim by every reopen.
     */
    uint32_t hardening_flags;
};

constexpr uint32_t kHardeningFlagCanaries = 1u << 0;

static_assert(sizeof(NvSuperblock) <= 512);

inline uint32_t
superblockCrc(const NvSuperblock &sb)
{
    return crc32(reinterpret_cast<const char *>(&sb) + 8, 40);
}

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_LAYOUT_H
