/**
 * @file
 * On-media (persistent) structures of NVAlloc.
 *
 * Everything in this header lives inside the emulated PM device and
 * must stay valid across crashes; all cross-structure references are
 * device offsets (or OffsetPtr), never raw pointers. Volatile mirrors
 * (vslab, vchunk, VEH) live in ordinary DRAM structs elsewhere.
 *
 * Heap geometry:
 *  - the device root area holds the NvSuperblock;
 *  - the heap grows in 4 MB regions; each region reserves its first
 *    64 KB as a header area holding in-place extent descriptors (used
 *    by the Base configuration; the log-structured configuration
 *    leaves it idle so both modes see identical data layout);
 *  - slabs are 64 KB extents whose first 4 KB is the SlabHeader;
 *  - a WAL region provides one 1 KB ring per thread slot;
 *  - the bookkeeping log region holds LogChunks of 128 8-byte entries.
 */

#ifndef NVALLOC_NVALLOC_LAYOUT_H
#define NVALLOC_NVALLOC_LAYOUT_H

#include <cstddef>
#include <cstdint>

#include "common/size_classes.h"

namespace nvalloc {

constexpr uint64_t kSuperMagic = 0x4e56414c4c4f4321ULL; // "NVALLOC!"
constexpr uint32_t kSlabMagic = 0x534c4142;             // "SLAB"
constexpr uint64_t kLogMagic = 0x4e564c4f47484452ULL;   // "NVLOGHDR"

constexpr size_t kRegionSize = 4 * 1024 * 1024;  //!< heap growth grain
constexpr size_t kRegionHeaderSize = 64 * 1024;  //!< in-place desc area
constexpr size_t kLargeMax = 2 * 1024 * 1024;    //!< above: direct map
constexpr size_t kExtentAlign = 16 * 1024;       //!< smallest extent

constexpr size_t kSlabHeaderSize = 4096;
constexpr unsigned kMaxSlabBlocks =
    (kSlabSize - kSlabHeaderSize) / 8; // 7680, smallest class is 8 B
constexpr size_t kSlabBitmapBytes = 2048; // fits 32 padded stripes
constexpr unsigned kIndexTableCap = 960;  // morph index_table entries

constexpr unsigned kMaxArenas = 64;
constexpr unsigned kMaxThreads = 128;
constexpr unsigned kNumGcRoots = 8;

/** Arena lifecycle flag (paper §4.4). */
enum class ArenaState : uint32_t
{
    Idle = 0,
    Running = 1,
    NormalShutdown = 2,
    Recovering = 3,
};

/**
 * Persistent slab header (paper §2.2, §5.2 / Fig. 5).
 *
 * flag encodes the morph step: 0 = regular slab (or slab_in after all
 * three steps — old_* fields are then live iff index_count > 0 is
 * still being tracked by the volatile cnt_slab), 1..3 = morph in
 * progress, crashed mid-transformation ⇒ undo.
 */
struct SlabHeader
{
    uint32_t magic;
    uint16_t size_class;
    uint16_t flag;
    uint32_t data_offset;      //!< slab-relative start of blocks
    uint16_t capacity;         //!< number of blocks
    uint16_t stripes;          //!< bitmap stripes in use
    uint16_t old_size_class;
    uint16_t old_data_offset_k; //!< old data offset (always header size)
    uint16_t index_count;      //!< live entries in index_table
    uint16_t old_capacity;
    uint8_t pad0[40];          //!< pad fixed fields to one cache line

    /** Interleaved allocation bitmap; bit = 1 ⇒ block allocated. */
    uint8_t bitmap[kSlabBitmapBytes];

    /**
     * Morph index table (paper Fig. 5): entry i describes the i-th
     * surviving block_before: bits [14:0] its block index in the old
     * geometry, bit 15 its state (1 = allocated, 0 = freed since).
     */
    uint16_t index_table[kIndexTableCap];

    uint8_t pad1[kSlabHeaderSize - 64 - kSlabBitmapBytes -
                 kIndexTableCap * 2];
};

static_assert(sizeof(SlabHeader) == kSlabHeaderSize);

constexpr uint16_t kIndexAllocated = 0x8000;
constexpr uint16_t kIndexBlockMask = 0x7fff;

/**
 * In-place extent descriptor (Base configuration, §3.3): one 64 B slot
 * per extent in the owning region's header area. Random in-place
 * updates of these slots are exactly the access pattern Fig. 2 shows.
 */
struct ExtentDesc
{
    uint64_t offset;   //!< device offset of the extent (0 = slot free)
    uint64_t size;
    uint32_t state;    //!< 1 = allocated, 2 = free (reclaimed)
    uint32_t is_slab;
    uint8_t pad[40];
};

static_assert(sizeof(ExtentDesc) == 64);

constexpr unsigned kDescsPerRegion = kRegionHeaderSize / sizeof(ExtentDesc);

/**
 * WAL entry (32 B): journal of one in-flight malloc/free. Only the
 * newest entry of a ring can describe an incomplete operation (threads
 * are synchronous), so appending entry k+1 implicitly commits entry k;
 * replay inspects the highest-sequence entry and decides completion by
 * checking whether the user's attach word holds the block offset.
 */
struct WalEntry
{
    uint64_t block_op;  //!< [63:2] block device offset, [1:0] op
    uint64_t seq;
    uint64_t where_off; //!< attach word's device offset (kWalNoWhere
                        //!< if the attach target is volatile)
    uint64_t size;
};

enum WalOp : uint64_t
{
    kWalNone = 0,
    kWalAlloc = 1,
    kWalFree = 2,
};

constexpr uint64_t kWalNoWhere = ~uint64_t{0};

// 64 logical entries; the physical ring is 4 KB because stripe padding
// can inflate the footprint by ~50%.
constexpr unsigned kWalRingEntries = 64;
constexpr size_t kWalRingBytes = 4096;

/** Bookkeeping log entry (8 B; paper §5.3): [63:62] type,
 *  [61:26] addr in 4 KB units, [25:0] size in bytes.
 *  Tombstones reuse addr = target chunk id, size = target slot. */
enum LogType : uint64_t
{
    kLogFree = 0,
    kLogNormal = 1,
    kLogSlab = 2,
    kLogTombstone = 3,
};

constexpr uint64_t
logEntryPack(LogType type, uint64_t addr_or_chunk, uint64_t size_or_slot)
{
    return (uint64_t(type) << 62) |
           ((addr_or_chunk & 0xfffffffffULL) << 26) |
           (size_or_slot & 0x3ffffffULL);
}

constexpr LogType
logEntryType(uint64_t e)
{
    return LogType(e >> 62);
}

constexpr uint64_t
logEntryAddr(uint64_t e)
{
    return (e >> 26) & 0xfffffffffULL;
}

constexpr uint64_t
logEntrySize(uint64_t e)
{
    return e & 0x3ffffffULL;
}

constexpr unsigned kLogEntriesPerChunk = 128;

/** Stripe count used inside log chunks when interleaving is on: 8 is
 *  the largest count whose padding still fits 128 entries in 1 KB and
 *  it pushes the same-line reuse distance to 7 (> reflush window). */
constexpr unsigned kLogChunkStripes = 8;
constexpr size_t kLogChunkDataBytes = kLogEntriesPerChunk * 8; // 1 KB

/** Persistent log chunk: one header line + 1 KB of entries. */
struct LogChunk
{
    uint32_t id;
    uint32_t active;
    uint64_t next;      //!< device offset of next active chunk (0 = end)
    uint8_t pad[48];
    uint64_t entries[kLogEntriesPerChunk];
};

static_assert(sizeof(LogChunk) == 64 + kLogChunkDataBytes);

/** Persistent log file header (paper Fig. 8). */
struct LogHeader
{
    uint64_t magic;
    uint64_t head[2];   //!< offsets of the two chunk-list heads
    uint32_t alt;       //!< which head[] is live
    uint32_t num_chunks; //!< chunks ever carved from the file
};

/** Superblock anchored in the device root area. */
struct NvSuperblock
{
    uint64_t magic;
    uint32_t version;
    uint32_t num_arenas;
    uint32_t stripes;
    uint32_t consistency; //!< 0 = LOG, 1 = GC

    uint64_t log_off;
    uint64_t log_bytes;
    uint64_t wal_off;     //!< kMaxThreads rings of kWalRingBytes

    uint64_t gc_roots[kNumGcRoots]; //!< device offsets, 0 = unset

    uint32_t arena_state[kMaxArenas];
};

static_assert(sizeof(NvSuperblock) <= 4096);

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_LAYOUT_H
