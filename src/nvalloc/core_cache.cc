#include "nvalloc/core_cache.h"

namespace nvalloc {

unsigned
CoreCache::reserve(unsigned cls, TCache &tcache, unsigned batch,
                   FastPathStats *stats)
{
    unsigned reserved = 0;
    uint64_t retries = 0;
    for (unsigned r = 0; r < nregions_ && reserved < batch; ++r) {
        VSlab *slab = slots_[cls][r].load(std::memory_order_acquire);
        if (!slab)
            continue;
        if (!slab->enterFast())
            continue; // frozen: morph/repair in flight
        // Re-check under the gate: the slab may have morphed to
        // another class (or into a morph) since it was slotted.
        if (slab->sizeClass() != cls || slab->morphing()) {
            slab->exitFast();
            continue;
        }
        while (reserved < batch && !tcache.full(cls)) {
            unsigned idx = slab->claimFast(retries);
            if (idx == slab->capacity())
                break;
            bool ok = tcache.push(
                cls, CachedBlock{slab->blockOffset(idx), slab, idx});
            NV_ASSERT(ok);
            ++reserved;
        }
        slab->exitFast();
    }
    if (stats) {
        stats->cas_retries.fetch_add(retries,
                                     std::memory_order_relaxed);
        if (reserved > 0)
            stats->reserve_hits.fetch_add(1, std::memory_order_relaxed);
        else
            stats->reserve_misses.fetch_add(1,
                                            std::memory_order_relaxed);
    }
    return reserved;
}

void
CoreCache::install(unsigned cls, VSlab *slab)
{
    unsigned r = rotor_[cls];
    rotor_[cls] = (r + 1) % nregions_;
    // Pin before publish: a reserve() that loads the pointer must
    // never see a slab maybeRelease could take away.
    slab->pinRegion();
    VSlab *old =
        slots_[cls][r].exchange(slab, std::memory_order_acq_rel);
    if (old == slab) {
        // Already slotted here; keep a single pin.
        slab->unpinRegion();
        return;
    }
    if (old)
        old->unpinRegion();
}

void
CoreCache::dropRegions()
{
    for (unsigned cls = 0; cls < kNumSizeClasses; ++cls) {
        for (unsigned r = 0; r < kMaxRegions; ++r) {
            VSlab *old =
                slots_[cls][r].exchange(nullptr,
                                        std::memory_order_acq_rel);
            if (old)
                old->unpinRegion();
        }
    }
}

} // namespace nvalloc
