#include "nvalloc/arena.h"

#include "common/logging.h"
#include "pm/vclock.h"

namespace nvalloc {

namespace {

/** Morph candidate scan is bounded so a long LRU of ineligible slabs
 *  cannot stall an allocation. */
constexpr unsigned kMorphScanLimit = 64;

/** Modeled CPU cost of a tcache refill round. */
constexpr uint64_t kRefillCpuNs = 120;

} // namespace

Arena::Arena(unsigned id, PmDevice *dev, const NvAllocConfig *cfg,
             LargeAllocator *large, RadixTree *slab_radix,
             const std::atomic<unsigned> *total_threads)
    : id_(id), dev_(dev), cfg_(cfg), large_(large),
      slab_radix_(slab_radix),
      gc_mode_(cfg->consistency == Consistency::Gc),
      stripes_(cfg->interleaved_bitmap ? cfg->bit_stripes : 1),
      total_threads_(total_threads),
      core_cache_(cfg->fastpath_regions)
{
}

unsigned
Arena::dynamicStripes(unsigned threads)
{
    // High concurrency already interleaves across threads; fewer
    // stripes per slab keep the XPBuffer working set bounded
    // (Fig. 16a: the optimum drifts from 6 toward 5 as threads
    // grow). Never below 5: the reflush window is 4 distinct lines.
    return threads <= 8 ? 6 : 5;
}

unsigned
Arena::slabStripes() const
{
    if (!cfg_->interleaved_bitmap)
        return 1;
    if (cfg_->dynamic_stripes && total_threads_) {
        return dynamicStripes(
            total_threads_->load(std::memory_order_relaxed));
    }
    return stripes_;
}

Arena::~Arena()
{
    for (VSlab *slab : slabs_)
        delete slab;
    for (VSlab *slab : graveyard_)
        delete slab;
}

void
Arena::enlist(VSlab *slab)
{
    if (!slab->in_freelist && slab->available() > 0) {
        freelist_[slab->sizeClass()].pushBack(slab);
        slab->in_freelist = true;
    }
}

void
Arena::delist(VSlab *slab)
{
    if (slab->in_freelist) {
        freelist_[slab->sizeClass()].remove(slab);
        slab->in_freelist = false;
    }
}

VSlab *
Arena::newSlab(unsigned cls)
{
    uint64_t off = large_->allocate(kSlabSize, true);
    if (off == 0)
        return nullptr;
    auto *slab = new VSlab(dev_, off, cls, slabStripes(),
                           cfg_->flush_enabled, gc_mode_);
    slab->arena = this;
    slab_radix_->setRange(off, kSlabSize, slab);
    slabs_.insert(slab);
    morph_lru_.pushBack(slab);
    enlist(slab);
    ++stats_.slabs_created;
    if (tel_)
        tel_->add(StatCounter::SlabCreated);
    return slab;
}

VSlab *
Arena::morphOne(unsigned cls)
{
    // Scan the LRU from least to most recently used (paper §5.2).
    unsigned scanned = 0;
    for (VSlab *slab = morph_lru_.front();
         slab && scanned < kMorphScanLimit;
         slab = morph_lru_.next(slab), ++scanned) {
        if (slab->sizeClass() == cls)
            continue;
        if (!slab->morphEligible(cfg_->morph_threshold))
            continue;

        // The slab_in leaves the LRU (it cannot morph again) and its
        // old class's freelist.
        morph_lru_.remove(slab);
        delist(slab);
        if (!slab->morphTo(cls, slabStripes())) {
            // A lock-free reservation broke eligibility between the
            // probe and the freeze; put the slab back and give up this
            // round.
            morph_lru_.pushBack(slab);
            enlist(slab);
            return nullptr;
        }
        enlist(slab);
        ++stats_.morphs;
        if (tel_) {
            tel_->add(StatCounter::SlabMorph);
            tel_->event(TraceOp::Morph, slab->slabOffset(),
                        uint8_t(cls));
        }
        VClock::advance(kRefillCpuNs, TimeKind::Other);
        return slab;
    }
    return nullptr;
}

unsigned
Arena::refill(TCache &tcache, unsigned cls)
{
    VLockGuard g(lock);
    ++stats_.refills;
    if (fp_stats_)
        fp_stats_->refill_searches.fetch_add(1,
                                             std::memory_order_relaxed);
    VClock::advance(kRefillCpuNs, TimeKind::Other);

    // Availability created by lock-free frees lives on the pending
    // stack until a locked refill folds it back into the freelists.
    drainPending();

    unsigned added = 0;
    while (!tcache.full(cls)) {
        // Prefer the fullest slab among the first few candidates:
        // packing allocations into occupied slabs keeps the sparse
        // ones eligible for morphing (and lowers fragmentation).
        VSlab *slab = freelist_[cls].front();
        if (slab) {
            VSlab *peer = slab;
            for (unsigned scan = 0; peer && scan < 8; ++scan) {
                if (peer->occupancy() > slab->occupancy())
                    slab = peer;
                peer = freelist_[cls].next(peer);
            }
        }
        if (!slab && cfg_->slab_morphing)
            slab = morphOne(cls);
        if (!slab)
            slab = newSlab(cls);
        if (!slab)
            break; // heap exhausted

        bool spread = tcache.subCount() > 1;
        unsigned got = 0;
        while (!tcache.full(cls)) {
            unsigned idx =
                spread ? slab->popBlockSpread() : slab->popBlock();
            if (idx == slab->capacity())
                break;
            bool ok = tcache.push(
                cls, CachedBlock{slab->blockOffset(idx), slab, idx});
            NV_ASSERT(ok);
            ++got;
        }
        added += got;
        // got == 0 with available() > 0 means racing lock-free claims
        // emptied the slab under us; delist it anyway or this loop
        // would spin on the same candidate.
        if (slab->available() == 0 || got == 0)
            delist(slab);
        if (slab->lru_link.linked())
            morph_lru_.touch(slab);
        // Refresh a region slot with the slab we just worked: the next
        // dry tcache on this core can then reserve lock-free.
        if (cfg_->fastpath == FastPathMode::LockFree &&
            slab->available() > 0) {
            core_cache_.install(cls, slab);
        }
    }
    if (tel_) {
        tel_->add(StatCounter::ArenaRefill);
        tel_->event(TraceOp::Refill, added, uint8_t(cls));
    }
    return added;
}

void
Arena::freeDirect(VSlab *slab, unsigned idx)
{
    slab->markFree(idx);
    enlist(slab);
    if (slab->lru_link.linked())
        morph_lru_.touch(slab);
    maybeRelease(slab);
}

void
Arena::freeOld(VSlab *slab, unsigned old_idx)
{
    bool finished = slab->freeOldBlock(old_idx);
    enlist(slab);
    if (finished) {
        // slab_after is a regular slab again: back into the LRU.
        NV_ASSERT(!slab->lru_link.linked());
        morph_lru_.pushBack(slab);
        maybeRelease(slab);
    }
}

void
Arena::noteAvailable(VSlab *slab)
{
    if (slab->lru_link.linked())
        morph_lru_.touch(slab);
    maybeRelease(slab);
}

void
Arena::returnLent(VSlab *slab, unsigned idx)
{
    slab->unlendBlock(idx);
    enlist(slab);
    maybeRelease(slab);
}

void
Arena::maybeRelease(VSlab *slab)
{
    if (slab->liveBlocks() != 0 || slab->lentBlocks() != 0 ||
        slab->morphing() || slab->regionPins() != 0) {
        return;
    }

    // Keep one fully-free slab per class cached; release the rest to
    // the large allocator so decay can return the memory.
    unsigned cls = slab->sizeClass();
    unsigned free_peers = 0;
    for (VSlab *peer = freelist_[cls].front(); peer;
         peer = freelist_[cls].next(peer)) {
        if (peer != slab && peer->liveBlocks() == 0 &&
            peer->lentBlocks() == 0 && !peer->morphing()) {
            ++free_peers;
        }
    }
    if (free_peers < 1)
        return;

    // Freeze before the final verdict: a lock-free reservation may
    // have claimed a block since the probe above. The slab stays
    // frozen forever after release — a stale radix pointer's
    // enterFast then fails and the free re-resolves under the lock,
    // which is the ABA defense for recycled extents.
    slab->freeze();
    if (slab->liveBlocks() != 0 || slab->lentBlocks() != 0 ||
        slab->morphing() || slab->regionPins() != 0) {
        slab->unfreeze();
        return;
    }

    delist(slab);
    if (slab->lru_link.linked())
        morph_lru_.remove(slab);
    slabs_.erase(slab);
    slab_radix_->setRange(slab->slabOffset(), kSlabSize, nullptr);
    large_->free(slab->slabOffset());
    graveyard_.push_back(slab);
    ++stats_.slabs_released;
    if (tel_)
        tel_->add(StatCounter::SlabReleased);
}

void
Arena::pendingPush(VSlab *slab)
{
    // One stack node per slab: the flag keeps a slab from being pushed
    // twice, so the intrusive next pointer can't be clobbered while
    // the slab is already enqueued.
    if (slab->pending.exchange(true, std::memory_order_acq_rel))
        return;
    VSlab *head = pending_head_.load(std::memory_order_relaxed);
    do {
        slab->pending_next.store(head, std::memory_order_relaxed);
    } while (!pending_head_.compare_exchange_weak(
        head, slab, std::memory_order_release,
        std::memory_order_relaxed));
}

void
Arena::drainPending()
{
    VSlab *s =
        pending_head_.exchange(nullptr, std::memory_order_acquire);
    while (s) {
        VSlab *next = s->pending_next.load(std::memory_order_relaxed);
        s->pending_next.store(nullptr, std::memory_order_relaxed);
        // Clear before processing: a fast free racing this drain can
        // re-enqueue the slab for the next one.
        s->pending.store(false, std::memory_order_release);
        // A slab released on an earlier drain iteration (or pushed
        // again after release) is in the graveyard; never re-enlist
        // those.
        if (slabs_.count(s)) {
            enlist(s);
            if (s->lru_link.linked())
                morph_lru_.touch(s);
            maybeRelease(s);
        }
        s = next;
    }
}

void
Arena::dropRegions()
{
    VLockGuard g(lock);
    core_cache_.dropRegions();
    drainPending();
    // With the pins gone, fully-free region slabs become releasable;
    // sweep them now so reclaimMemory actually returns the memory.
    std::vector<VSlab *> candidates;
    for (VSlab *s : slabs_) {
        if (s->liveBlocks() == 0 && s->lentBlocks() == 0 &&
            !s->morphing())
            candidates.push_back(s);
    }
    for (VSlab *s : candidates)
        maybeRelease(s);
}

void
Arena::registerSlab(VSlab *slab)
{
    VLockGuard g(lock);
    slab->arena = this;
    slab_radix_->setRange(slab->slabOffset(), kSlabSize, slab);
    slabs_.insert(slab);
    if (!slab->morphing())
        morph_lru_.pushBack(slab);
    enlist(slab);
}

void
Arena::persistAllBitmaps()
{
    VLockGuard g(lock);
    for (VSlab *slab : slabs_) {
        dev_->persist(slab->header()->bitmap, kSlabBitmapBytes,
                      TimeKind::FlushMeta);
    }
    dev_->fence();
}

} // namespace nvalloc
