/**
 * @file
 * Slabs: 64 KB containers of fixed-size blocks (paper §2.2, §5.1, §5.2).
 *
 * Each slab has a persistent 4 KB header (SlabHeader in layout.h) and a
 * volatile mirror, the VSlab, holding everything recovery can rebuild:
 * a volatile availability bitmap for fast free-block search, counters,
 * and the morphing bookkeeping (cnt_slab / cnt_block, paper Fig. 5).
 *
 * Two bitmaps with different meanings:
 *  - persistent header bitmap: bit set = block allocated to the user;
 *    this is what recovery trusts. Bits are placed through the
 *    InterleaveMap so consecutive allocations flush different lines.
 *  - volatile vbitmap (logical block order): bit set = block not
 *    available for handout (allocated, lent to a tcache, or overlapped
 *    by live old-class blocks during morphing).
 */

#ifndef NVALLOC_NVALLOC_SLAB_H
#define NVALLOC_NVALLOC_SLAB_H

#include <cstdint>
#include <vector>

#include "common/bitmap_ops.h"
#include "common/lru_list.h"
#include "common/size_classes.h"
#include "nvalloc/interleave.h"
#include "nvalloc/layout.h"
#include "pm/pm_device.h"

namespace nvalloc {

class Arena;

/** Derived per-size-class slab geometry. */
struct SlabGeometry
{
    unsigned size_class = 0;
    unsigned block_size = 0;
    unsigned capacity = 0;
    InterleaveMap map;

    static SlabGeometry
    compute(unsigned cls, unsigned stripes)
    {
        SlabGeometry g;
        g.size_class = cls;
        g.block_size = classToSize(cls);
        g.capacity = (kSlabSize - kSlabHeaderSize) / g.block_size;
        g.map = InterleaveMap::build(g.capacity, 1, stripes);
        return g;
    }
};

class VSlab
{
  public:
    /** Format a freshly mapped 64 KB extent as a slab. */
    VSlab(PmDevice *dev, uint64_t slab_off, unsigned cls, unsigned stripes,
          bool flush_enabled, bool gc_mode);

    /** Adopt an existing slab during recovery (header already valid;
     *  rebuilds all volatile state from the persistent header). */
    VSlab(PmDevice *dev, uint64_t slab_off, bool flush_enabled,
          bool gc_mode);

    /**
     * Recovery gate: can the header at `slab_off` be trusted? Checks
     * media poison, magic, the header crc (when `verify_crc`), and
     * that the geometry fields are self-consistent. Recovery
     * quarantines slabs that fail instead of adopting them — a
     * corrupt capacity or stripe count would send markFree/claimBlock
     * into wild memory.
     */
    static bool headerLooksValid(PmDevice *dev, uint64_t slab_off,
                                 bool verify_crc);

    // -- geometry ---------------------------------------------------

    uint64_t slabOffset() const { return slab_off_; }
    unsigned sizeClass() const { return geo_.size_class; }
    unsigned blockSize() const { return geo_.block_size; }
    unsigned capacity() const { return geo_.capacity; }
    SlabHeader *header() const { return hdr_; }

    uint64_t
    blockOffset(unsigned idx) const
    {
        return slab_off_ + kSlabHeaderSize +
               uint64_t(idx) * geo_.block_size;
    }

    /** Logical block index of a device offset, or capacity() if the
     *  offset is not a block start of the current geometry. */
    unsigned blockIndexOf(uint64_t off) const;

    /** Cache line (within the persistent bitmap) holding this block's
     *  bit; tcaches bucket blocks by this. */
    unsigned
    bitLineOf(unsigned idx) const
    {
        return geo_.map.physical(idx) / (kCacheLine * 8);
    }

    // -- availability (volatile) ------------------------------------

    unsigned available() const { return avail_; }
    unsigned liveBlocks() const { return live_; }
    unsigned lentBlocks() const { return lent_; }

    /** Take one available block for a tcache; marks it unavailable and
     *  lent. Returns capacity() if none. */
    unsigned popBlock();

    /**
     * Like popBlock() but starts the scan at a rotating bitmap line so
     * successive pops come from different cache lines — this is what
     * lets the interleaved tcache layout help even when the bitmap
     * itself is mapped sequentially (paper Fig. 11 "+Interleaved").
     */
    unsigned popBlockSpread();

    /** A lent block was returned unallocated (tcache flush). */
    void unlendBlock(unsigned idx);

    // -- persistent allocation state --------------------------------

    /** A lent block was handed to the user: set + persist its bit. */
    void markAllocated(unsigned idx);

    /** Recovery roll-forward: claim a specific free block as
     *  allocated (GC variant completing an in-flight allocation). */
    void claimBlock(unsigned idx);

    /** Free a user block straight back to the slab (not via tcache):
     *  clear + persist its bit, block becomes available. */
    void markFree(unsigned idx);

    /** Free a user block into a tcache: clear + persist its bit, but
     *  keep it lent (the tcache now owns it). */
    void markFreeToTcache(unsigned idx);

    bool
    isAllocated(unsigned idx) const
    {
        return bitmapTest(pbitmapWords(), geo_.map.physical(idx));
    }

    // -- audit / repair hooks (HeapAuditor) -------------------------

    /** Volatile availability bit: set when the block is allocated,
     *  lent to a tcache, or shadowed by a live old-geometry block. */
    bool
    vbitTest(unsigned idx) const
    {
        return bitmapTest(vbitmap_, idx);
    }

    /**
     * Repair: rewrite the persistent bitmap from the volatile one.
     * Only sound when no block is lent (a lent block's persistent bit
     * is deliberately clear while its vbit is set) and the slab is not
     * morphing (old-geometry liveness lives in the index table, not
     * the bitmap). Returns false without writing in those states.
     */
    bool rebuildPersistentBitmap();

    /**
     * Repair: rewrite the header's first line (magic, geometry, flag,
     * crc) from the volatile mirror. Refused while morphing — the
     * staged old/new geometry words are then load-bearing and have no
     * volatile copy that is known-good. Returns false if refused.
     */
    bool repairHeader();

    // -- morphing (paper §5.2) --------------------------------------

    bool
    morphing() const
    {
        return cnt_slab_ > 0;
    }

    /** Fraction of blocks allocated; the Ratio_occupy of §5.2. */
    double
    occupancy() const
    {
        return capacity() ? double(live_) / capacity() : 1.0;
    }

    /** Eligible to be transformed to another size class now? */
    bool morphEligible(double threshold) const;

    /** Transform to `new_cls` (three persistent steps + flag). */
    void morphTo(unsigned new_cls, unsigned stripes);

    /**
     * Classify a device offset inside this slab: returns true and sets
     * `old_idx` if it is a live old-geometry block (block_before),
     * false if it belongs to the current geometry.
     */
    bool isOldBlock(uint64_t off, unsigned &old_idx) const;

    /** Release a block_before; may complete the morph (cnt_slab → 0,
     *  returns true so the arena can re-enlist the slab). */
    bool freeOldBlock(unsigned old_idx);

    unsigned cntSlab() const { return cnt_slab_; }
    unsigned cntBlock(unsigned idx) const { return cnt_block_[idx]; }

    // -- intrusive links owned by the arena -------------------------

    LruLink lru_link;   //!< morph candidate LRU
    LruLink free_link;  //!< freelist_slab membership
    bool in_freelist = false;
    Arena *arena = nullptr;

  private:
    PmDevice *dev_;
    uint64_t slab_off_;
    SlabHeader *hdr_;
    SlabGeometry geo_;
    bool flush_ = true;
    bool gc_mode_ = false; //!< GC variant: write but do not flush bits

    uint64_t vbitmap_[bitmapWords(kMaxSlabBlocks)] = {};
    unsigned spread_rotor_ = 0; //!< popBlockSpread line cursor
    unsigned avail_ = 0; //!< blocks available for handout
    unsigned live_ = 0;  //!< blocks allocated (current geometry)
    unsigned lent_ = 0;  //!< blocks sitting in tcaches

    // Morph state.
    unsigned cnt_slab_ = 0;
    SlabGeometry old_geo_;
    std::vector<uint16_t> cnt_block_;

    uint64_t *
    pbitmapWords() const
    {
        return reinterpret_cast<uint64_t *>(hdr_->bitmap);
    }

    void persistBit(unsigned idx, bool set);
    void persistHeaderLine(const void *addr, size_t len);
    void updateHeaderCrc() { hdr_->crc = slabHeaderCrc(*hdr_); }
    void setFlag(uint16_t flag);
    void rebuildMorphState();
    void finishMorph();
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_SLAB_H
