/**
 * @file
 * Slabs: 64 KB containers of fixed-size blocks (paper §2.2, §5.1, §5.2).
 *
 * Each slab has a persistent 4 KB header (SlabHeader in layout.h) and a
 * volatile mirror, the VSlab, holding everything recovery can rebuild:
 * a volatile availability bitmap for fast free-block search, counters,
 * and the morphing bookkeeping (cnt_slab / cnt_block, paper Fig. 5).
 *
 * Two bitmaps with different meanings:
 *  - persistent header bitmap: bit set = block allocated to the user;
 *    this is what recovery trusts. Bits are placed through the
 *    InterleaveMap so consecutive allocations flush different lines.
 *  - volatile vbitmap (logical block order, a SlabBitfield): bit set =
 *    block not available for handout (allocated, lent to a tcache, or
 *    overlapped by live old-class blocks during morphing).
 *
 * Concurrency (ISSUE 9, DESIGN.md §14): the volatile bitmap, the
 * counters and the persistent bit writes are all atomic, so the hot
 * alloc/free paths mutate a slab without the arena VLock. Exclusive
 * operations that rewrite whole structures non-atomically (morphTo,
 * rebuildPersistentBitmap, repairHeader, slab release) serialize
 * against in-flight fast operations through the freeze gate: every
 * fast-path mutation runs between enterFast()/exitFast(), and freeze()
 * raises the frozen flag then waits the in-flight count down to zero.
 * A gate holder must never acquire a VLock (freezers hold one).
 */

#ifndef NVALLOC_NVALLOC_SLAB_H
#define NVALLOC_NVALLOC_SLAB_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/bitmap_ops.h"
#include "common/lru_list.h"
#include "common/size_classes.h"
#include "nvalloc/interleave.h"
#include "nvalloc/layout.h"
#include "nvalloc/slab_bitfield.h"
#include "pm/pm_device.h"

namespace nvalloc {

class Arena;

/** Derived per-size-class slab geometry. */
struct SlabGeometry
{
    unsigned size_class = 0;
    unsigned block_size = 0;
    unsigned capacity = 0;
    InterleaveMap map;

    static SlabGeometry
    compute(unsigned cls, unsigned stripes)
    {
        SlabGeometry g;
        g.size_class = cls;
        g.block_size = classToSize(cls);
        g.capacity = (kSlabSize - kSlabHeaderSize) / g.block_size;
        g.map = InterleaveMap::build(g.capacity, 1, stripes);
        return g;
    }
};

class VSlab
{
  public:
    /** Format a freshly mapped 64 KB extent as a slab. */
    VSlab(PmDevice *dev, uint64_t slab_off, unsigned cls, unsigned stripes,
          bool flush_enabled, bool gc_mode);

    /** Adopt an existing slab during recovery (header already valid;
     *  rebuilds all volatile state from the persistent header). */
    VSlab(PmDevice *dev, uint64_t slab_off, bool flush_enabled,
          bool gc_mode);

    /**
     * Recovery gate: can the header at `slab_off` be trusted? Checks
     * media poison, magic, the header crc (when `verify_crc`), and
     * that the geometry fields are self-consistent. Recovery
     * quarantines slabs that fail instead of adopting them — a
     * corrupt capacity or stripe count would send markFree/claimBlock
     * into wild memory.
     */
    static bool headerLooksValid(PmDevice *dev, uint64_t slab_off,
                                 bool verify_crc);

    // -- geometry ---------------------------------------------------

    uint64_t slabOffset() const { return slab_off_; }
    unsigned sizeClass() const { return geo_.size_class; }
    unsigned blockSize() const { return geo_.block_size; }
    unsigned capacity() const { return geo_.capacity; }
    SlabHeader *header() const { return hdr_; }

    uint64_t
    blockOffset(unsigned idx) const
    {
        return slab_off_ + kSlabHeaderSize +
               uint64_t(idx) * geo_.block_size;
    }

    /** Logical block index of a device offset, or capacity() if the
     *  offset is not a block start of the current geometry. */
    unsigned blockIndexOf(uint64_t off) const;

    /** Cache line (within the persistent bitmap) holding this block's
     *  bit; tcaches bucket blocks by this. */
    unsigned
    bitLineOf(unsigned idx) const
    {
        return geo_.map.physical(idx) / (kCacheLine * 8);
    }

    // -- availability (volatile) ------------------------------------

    unsigned
    available() const
    {
        return avail_.load(std::memory_order_relaxed);
    }

    unsigned
    liveBlocks() const
    {
        return live_.load(std::memory_order_relaxed);
    }

    unsigned
    lentBlocks() const
    {
        return lent_.load(std::memory_order_relaxed);
    }

    /** Take one available block for a tcache; marks it unavailable and
     *  lent. Returns capacity() if none. */
    unsigned popBlock();

    /**
     * Like popBlock() but starts the scan at a rotating bitmap line so
     * successive pops come from different cache lines — this is what
     * lets the interleaved tcache layout help even when the bitmap
     * itself is mapped sequentially (paper Fig. 11 "+Interleaved").
     */
    unsigned popBlockSpread();

    /** A lent block was returned unallocated (tcache flush). */
    void unlendBlock(unsigned idx);

    // -- lock-free fast path (core_cache.h, DESIGN.md §14) ----------

    /**
     * Enter the fast-op gate: register this thread as an in-flight
     * fast mutator. Returns false — without entering — when the slab
     * is frozen (morph/repair/release in progress, or the slab was
     * released: released slabs stay frozen forever); the caller then
     * takes the locked fallback. Every fast-path mutation of slab
     * state must run between a successful enterFast() and exitFast(),
     * and must not acquire any VLock in between.
     */
    bool
    enterFast()
    {
        uint32_t prev = gate_.fetch_add(1, std::memory_order_acq_rel);
        if (prev & kFrozen) {
            gate_.fetch_sub(1, std::memory_order_release);
            return false;
        }
        return true;
    }

    /** Leave the gate and publish a new observation epoch. */
    void
    exitFast()
    {
        fp_epoch_.fetch_add(1, std::memory_order_release);
        gate_.fetch_sub(1, std::memory_order_release);
    }

    /**
     * Block new fast ops and wait out the in-flight ones. The caller
     * (who holds the owning arena's VLock) then has exclusive access
     * to all slab state, including plain non-atomic rewrites — the
     * gate's acquire/release pair is the happens-before edge.
     */
    void
    freeze()
    {
        gate_.fetch_or(kFrozen, std::memory_order_acq_rel);
        // Single freezer by construction (freezing requires the arena
        // lock); wait the in-flight count down. Fast ops are bounded —
        // no VLock may be taken inside the gate — so this terminates.
        while (gate_.load(std::memory_order_acquire) != kFrozen)
            std::this_thread::yield();
    }

    void
    unfreeze()
    {
        gate_.fetch_and(~kFrozen, std::memory_order_release);
    }

    bool
    frozen() const
    {
        return gate_.load(std::memory_order_acquire) & kFrozen;
    }

    /**
     * Observation epoch for lock-free readers (auditor patrol): bumped
     * on every fast-op exit. A reader captures the epoch, observes,
     * re-reads — a change (or fpBusy()) means the observation raced an
     * in-flight update and must be retried, the explicit-epoch
     * contract that replaced "reader holds the arena lock".
     */
    uint64_t
    fpEpoch() const
    {
        return fp_epoch_.load(std::memory_order_acquire);
    }

    bool
    fpBusy() const
    {
        return (gate_.load(std::memory_order_acquire) & ~kFrozen) != 0;
    }

    /**
     * Lock-free popBlock: CAS-claim one available block (word rotor
     * spreads concurrent claimers across bitmap cache lines), marking
     * it lent. Returns capacity() when none. Gate required. CAS losses
     * are added to `cas_retries`.
     */
    unsigned claimFast(uint64_t &cas_retries);

    /**
     * Begin a lock-free free of block `idx`: arbitration so exactly
     * one of two racing frees of the same block proceeds (the
     * persistent bit cannot arbitrate — journal-first ordering clears
     * it only after the WAL append). False = a racing free owns the
     * block; report a double free. Gate required.
     */
    bool
    tryBeginFree(unsigned idx)
    {
        return freeing_.tryClaim(idx);
    }

    /** Finish (or abandon) a lock-free free begun by tryBeginFree. */
    void
    endFree(unsigned idx)
    {
        freeing_.release(idx);
    }

    // -- CoreCache region pinning -----------------------------------

    /** Pinned as a CoreCache region: maybeRelease must skip it (a
     *  lock-free reservation may be dereferencing it right now). */
    unsigned
    regionPins() const
    {
        return region_pins_.load(std::memory_order_relaxed);
    }

    void
    pinRegion()
    {
        region_pins_.fetch_add(1, std::memory_order_relaxed);
    }

    void
    unpinRegion()
    {
        region_pins_.fetch_sub(1, std::memory_order_relaxed);
    }

    // -- persistent allocation state --------------------------------

    /** A lent block was handed to the user: set + persist its bit. */
    void markAllocated(unsigned idx);

    /** Recovery roll-forward: claim a specific free block as
     *  allocated (GC variant completing an in-flight allocation). */
    void claimBlock(unsigned idx);

    /** Free a user block straight back to the slab (not via tcache):
     *  clear + persist its bit, block becomes available. */
    void markFree(unsigned idx);

    /** Free a user block into a tcache: clear + persist its bit, but
     *  keep it lent (the tcache now owns it). */
    void markFreeToTcache(unsigned idx);

    bool
    isAllocated(unsigned idx) const
    {
        unsigned phys = geo_.map.physical(idx);
        uint64_t w = std::atomic_ref<const uint64_t>(
                         pbitmapWords()[phys >> 6])
                         .load(std::memory_order_relaxed);
        return (w >> (phys & 63)) & 1;
    }

    // -- audit / repair hooks (HeapAuditor) -------------------------

    /** Volatile availability bit: set when the block is allocated,
     *  lent to a tcache, or shadowed by a live old-geometry block. */
    bool
    vbitTest(unsigned idx) const
    {
        return vbits_.test(idx);
    }

    /** Atomic popcount of the persistent bitmap, for observers racing
     *  lock-free persistBit writers (auditor patrol). A snapshot —
     *  pair it with the fpEpoch() retry contract. */
    unsigned
    persistentPopcount() const
    {
        unsigned n = 0;
        const uint64_t *words = pbitmapWords();
        for (size_t w = 0; w < kSlabBitmapBytes / 8; ++w) {
            n += unsigned(std::popcount(
                std::atomic_ref<const uint64_t>(words[w]).load(
                    std::memory_order_relaxed)));
        }
        return n;
    }

    /**
     * Repair: rewrite the persistent bitmap from the volatile one.
     * Only sound when no block is lent (a lent block's persistent bit
     * is deliberately clear while its vbit is set) and the slab is not
     * morphing (old-geometry liveness lives in the index table, not
     * the bitmap). Returns false without writing in those states.
     */
    bool rebuildPersistentBitmap();

    /**
     * Repair: rewrite the header's first line (magic, geometry, flag,
     * crc) from the volatile mirror. Refused while morphing — the
     * staged old/new geometry words are then load-bearing and have no
     * volatile copy that is known-good. Returns false if refused.
     */
    bool repairHeader();

    // -- morphing (paper §5.2) --------------------------------------

    bool
    morphing() const
    {
        return cnt_slab_.load(std::memory_order_acquire) > 0;
    }

    /** Fraction of blocks allocated; the Ratio_occupy of §5.2. */
    double
    occupancy() const
    {
        return capacity() ? double(liveBlocks()) / capacity() : 1.0;
    }

    /** Eligible to be transformed to another size class now? */
    bool morphEligible(double threshold) const;

    /** Transform to `new_cls` (three persistent steps + flag).
     *  Freezes the slab for the duration; returns false without
     *  morphing if a racing fast-path reservation broke eligibility
     *  between the caller's morphEligible probe and the freeze. */
    bool morphTo(unsigned new_cls, unsigned stripes);

    /**
     * Classify a device offset inside this slab: returns true and sets
     * `old_idx` if it is a live old-geometry block (block_before),
     * false if it belongs to the current geometry.
     */
    bool isOldBlock(uint64_t off, unsigned &old_idx) const;

    /** Release a block_before; may complete the morph (cnt_slab → 0,
     *  returns true so the arena can re-enlist the slab). */
    bool freeOldBlock(unsigned old_idx);

    unsigned
    cntSlab() const
    {
        return cnt_slab_.load(std::memory_order_relaxed);
    }

    unsigned cntBlock(unsigned idx) const { return cnt_block_[idx]; }

    // -- intrusive links owned by the arena -------------------------

    LruLink lru_link;   //!< morph candidate LRU
    LruLink free_link;  //!< freelist_slab membership
    bool in_freelist = false;
    Arena *arena = nullptr;

    /** Pending-enlist hook: lock-free frees that create availability
     *  push the slab onto the arena's Treiber stack; the next locked
     *  refill drains it. Owned by Arena. */
    std::atomic<VSlab *> pending_next{nullptr};
    std::atomic<bool> pending{false};

  private:
    static constexpr uint32_t kFrozen = 0x80000000u;

    PmDevice *dev_;
    uint64_t slab_off_;
    SlabHeader *hdr_;
    SlabGeometry geo_;
    bool flush_ = true;
    bool gc_mode_ = false; //!< GC variant: write but do not flush bits

    SlabBitfield<kMaxSlabBlocks> vbits_;
    /** In-flight-free arbitration bits (tryBeginFree). */
    SlabBitfield<kMaxSlabBlocks> freeing_;

    std::atomic<unsigned> spread_rotor_{0}; //!< popBlockSpread cursor
    std::atomic<unsigned> claim_rotor_{0};  //!< claimFast word cursor
    std::atomic<unsigned> avail_{0}; //!< blocks available for handout
    std::atomic<unsigned> live_{0};  //!< allocated (current geometry)
    std::atomic<unsigned> lent_{0};  //!< blocks sitting in tcaches

    /** Fast-op gate: bit 31 = frozen, low bits = in-flight count. */
    std::atomic<uint32_t> gate_{0};
    std::atomic<uint64_t> fp_epoch_{0};
    std::atomic<unsigned> region_pins_{0};

    // Morph state. cnt_slab_ is atomic because morphing() gates the
    // lock-free free path; the rest is only touched in exclusive
    // contexts (recovery, or under freeze).
    std::atomic<unsigned> cnt_slab_{0};
    SlabGeometry old_geo_;
    std::vector<uint16_t> cnt_block_;

    uint64_t *
    pbitmapWords() const
    {
        return reinterpret_cast<uint64_t *>(hdr_->bitmap);
    }

    void persistBit(unsigned idx, bool set);
    void persistHeaderLine(const void *addr, size_t len);
    void updateHeaderCrc() { hdr_->crc = slabHeaderCrc(*hdr_); }
    void setFlag(uint16_t flag);
    void rebuildMorphState();
    void finishMorph();
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_SLAB_H
