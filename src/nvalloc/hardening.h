/**
 * @file
 * Heap-hardening subsystem (DESIGN.md §9).
 *
 * Production PM allocators sit byte-adjacent to user payloads: a
 * single application overflow or use-after-free silently corrupts
 * persistent metadata that survives restart forever. This layer turns
 * that undefined behaviour into detected, contained, reported events:
 *
 *  - sampled guard allocations (GWP-ASan style): 1-in-N small
 *    allocations are redirected to a dedicated large extent whose tail
 *    is filled with a redzone pattern; the free verifies the redzone
 *    and catches linear overflows at the faulting allocation, and a
 *    bounded watch list over freed guard extents catches
 *    use-after-free writes into the poisoned user area;
 *  - a hardened free pipeline: every free is validated in one ordered
 *    pass (provenance → alignment → double-free under the slab vlock)
 *    and rejections are classified per kind, including cross-heap
 *    frees via a process-wide heap registry;
 *  - redzone canaries: opt-in per-block canary words stamped at
 *    allocation and checked on free and by the auditor, so a linear
 *    overflow of *any* small block (not just sampled ones) is caught
 *    at its free;
 *  - a bounded FIFO quarantine that delays block reuse: quarantined
 *    blocks stay lent (unavailable) and are filled with a poison
 *    pattern verified at eviction, so a use-after-free write lands in
 *    a detectable window instead of a recycled object.
 *
 * Everything here is volatile policy over the existing persistent
 * format: a crash simply forgets guard registrations and the
 * quarantine (quarantined blocks recover as free — their persistent
 * bit was already cleared), and canaries are restamped by recovery so
 * a torn canary line can never masquerade as an application stomp.
 *
 * What a detection does is the HardeningPolicy: Report (count + warn +
 * structured CorruptionReport; corrupted blocks are leaked), Quarantine
 * (report, then push the block through the delayed-reuse FIFO), or
 * Abort (std::abort at the faulting operation, for test harnesses and
 * paranoid deployments).
 */

#ifndef NVALLOC_NVALLOC_HARDENING_H
#define NVALLOC_NVALLOC_HARDENING_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nvalloc/config.h"
#include "telemetry/event_ring.h"

namespace nvalloc {

class NvAlloc;
class PmDevice;
class Telemetry;
class VSlab;

/** Classification of a detected corruption / hostile operation. */
enum class CorruptionKind : uint8_t
{
    GuardOverflow,     //!< guard redzone dirtied (overflow at free)
    GuardUseAfterFree, //!< freed guard's poison fill dirtied
    DoubleFree,        //!< free of an already-free block/extent
    MisalignedFree,    //!< interior or misaligned pointer
    WildFree,          //!< offset no heap structure owns
    CrossHeapFree,     //!< offset owned by a *different* live heap
    CanaryStomp,       //!< per-block canary overwritten
    QuarantineStomp,   //!< quarantined block's poison fill dirtied
    TxStagedFree,      //!< plain free of a block staged in an open tx
};

inline const char *
corruptionKindName(CorruptionKind k)
{
    switch (k) {
    case CorruptionKind::GuardOverflow: return "guard-overflow";
    case CorruptionKind::GuardUseAfterFree: return "guard-uaf";
    case CorruptionKind::DoubleFree: return "double-free";
    case CorruptionKind::MisalignedFree: return "misaligned-free";
    case CorruptionKind::WildFree: return "wild-free";
    case CorruptionKind::CrossHeapFree: return "cross-heap-free";
    case CorruptionKind::CanaryStomp: return "canary-stomp";
    case CorruptionKind::QuarantineStomp: return "quarantine-stomp";
    case CorruptionKind::TxStagedFree: return "tx-staged-free";
    }
    return "?";
}

/**
 * Structured description of one detected corruption; handed to the
 * report hook and kept (bounded) for post-mortem inspection. The trace
 * tail holds the alloc/free events that touched the offending offset,
 * when event tracing is armed — the GWP-ASan "allocated here / freed
 * here" context.
 */
struct CorruptionReport
{
    CorruptionKind kind = CorruptionKind::WildFree;
    uint64_t off = 0;          //!< offending device offset
    uint32_t size_class = ~0u; //!< small-block class, ~0u if unknown
    std::string detail;        //!< human-readable one-liner
    std::vector<TraceEvent> trace; //!< events touching off (≤ 8)
};

/** stats.hardening.* counters. All relaxed atomics: bumped on the
 *  (cold) detection paths and on guard/quarantine traffic, read
 *  lock-free by the ctl tree. */
struct HardeningStats
{
    std::atomic<uint64_t> validated_frees{0}; //!< frees passing checks
    std::atomic<uint64_t> double_frees{0};
    std::atomic<uint64_t> misaligned_frees{0};
    std::atomic<uint64_t> wild_frees{0};
    std::atomic<uint64_t> cross_heap_frees{0};
    std::atomic<uint64_t> canary_stomps{0};
    std::atomic<uint64_t> tx_staged_frees{0}; //!< frees racing an open tx
    std::atomic<uint64_t> guard_allocs{0};
    std::atomic<uint64_t> guard_frees{0};
    std::atomic<uint64_t> guard_overflows{0};
    std::atomic<uint64_t> guard_uaf{0};
    std::atomic<uint64_t> quarantine_pushes{0};
    std::atomic<uint64_t> quarantine_evictions{0};
    std::atomic<uint64_t> quarantine_uaf{0};
    std::atomic<uint64_t> leaked_blocks{0}; //!< report-and-leak leaks
    std::atomic<uint64_t> reports{0};       //!< CorruptionReports made
};

class HardeningManager
{
  public:
    /** Fill patterns. Chosen to be distinct from each other and from
     *  the common all-zero / all-ones corruption shapes. */
    static constexpr uint8_t kGuardRedzoneByte = 0xcb;
    static constexpr uint8_t kGuardFreeByte = 0xdd;
    static constexpr uint8_t kQuarantineByte = 0xf5;
    static constexpr size_t kCanaryBytes = 8;
    /** Freed guard extents watched for use-after-free writes. */
    static constexpr size_t kGuardWatchDepth = 8;
    /** Reports retained for post-mortem inspection. */
    static constexpr size_t kMaxRetainedReports = 16;

    HardeningManager() = default;
    ~HardeningManager();

    HardeningManager(const HardeningManager &) = delete;
    HardeningManager &operator=(const HardeningManager &) = delete;

    /** Bind to a heap; registers it for cross-heap classification.
     *  `owner` may be null (tests exercising the manager alone). */
    void init(NvAlloc *owner, PmDevice *dev, Telemetry *tel,
              const NvAllocConfig &cfg);

    /** Unregister from the cross-heap registry and drop volatile
     *  state. With `crashed`, the quarantine is discarded without
     *  touching slabs (they may already be gone). */
    void shutdown(bool crashed);

    HardeningPolicy policy() const { return policy_; }

    /** False until init() wires the device/owner. Recovery runs
     *  before init, so recovery-time frees must check this and skip
     *  the quarantine (it is volatile and there are no mutators to
     *  defend against yet). */
    bool ready() const { return dev_ != nullptr; }
    const HardeningStats &stats() const { return stats_; }

    /** Per-block canary word: a fixed seed whitened by the block
     *  offset, so a canary copied verbatim to another block still
     *  fails verification. */
    static uint64_t
    canaryValue(uint64_t off)
    {
        return 0x4e56434e41525921ULL ^ (off * 0x9e3779b97f4a7c15ULL);
    }

    // ---- detection & policy -----------------------------------------

    /**
     * Record one detected corruption: bump the per-kind counter, emit
     * a TraceOp::Corruption event, capture the alloc/free trace tail
     * for `off` when tracing is armed, retain the report (bounded) and
     * apply the policy — Abort aborts here; Report/Quarantine return
     * so the caller can contain the damage as the kind requires.
     */
    void report(CorruptionKind kind, uint64_t off, uint32_t size_class,
                std::string detail);

    /** Snapshot of the retained reports, newest last. */
    std::vector<CorruptionReport> reportsSnapshot() const;

    void noteValidatedFree() { bump(stats_.validated_frees); }
    void noteLeakedBlock() { bump(stats_.leaked_blocks); }
    void noteGuardFree() { bump(stats_.guard_frees); }

    // ---- cross-heap registry ----------------------------------------

    /** Does any *other* registered heap own `off`? Best-effort: only
     *  consulted after the local heap already rejected the free. */
    bool ownedByAnotherHeap(uint64_t off) const;

    // ---- guard allocations ------------------------------------------

    struct GuardInfo
    {
        uint64_t user_size = 0;
        uint64_t extent_size = 0;
    };

    /** Register a freshly allocated guard extent and paint its
     *  redzone tail [off+user_size, off+extent_size). */
    void armGuard(uint64_t off, uint64_t user_size,
                  uint64_t extent_size);

    bool isGuard(uint64_t off) const;

    /** Remove the registration; false if `off` is not a live guard. */
    bool takeGuard(uint64_t off, GuardInfo *out);

    /** True iff the redzone tail of a live guard is intact. Call
     *  before takeGuard so the info is still registered. */
    bool guardRedzoneIntact(uint64_t off, const GuardInfo &info) const;

    /**
     * Watch a just-freed (and already poison-filled) guard extent for
     * use-after-free writes. Bounded: pushing may evict the oldest
     * entry after verifying its fill — verification runs under the
     * large allocator's lock so a concurrent reallocation of the
     * extent can neither race the read nor be misread as a stomp.
     */
    void watchFreedGuard(uint64_t off, const GuardInfo &info);

    /** Verify every still-reclaimed watched extent now (test hook /
     *  drain point); entries are consumed either way. */
    void sweepGuardWatch();

    // ---- delayed-reuse quarantine -----------------------------------

    /**
     * Push a freed small block into the quarantine FIFO. The caller
     * must have markFreeToTcache()d it (persistent bit cleared, block
     * still lent so its slab cannot be released) and must NOT hold the
     * arena lock — eviction of the oldest entry re-locks its (possibly
     * different) arena. The block is filled with kQuarantineByte; the
     * eviction verifies the fill and reports QuarantineStomp on a
     * mismatch before returning the block to its arena.
     */
    void quarantinePush(VSlab *slab, unsigned idx, uint64_t off,
                        unsigned block_size);

    /** Evict everything (reclaim slow path, normal shutdown). */
    void drainQuarantine();

    /** Forget the quarantine without touching slabs (crash path). */
    void dropQuarantine();

    uint64_t
    quarantineDepth() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return quarantine_.size();
    }

    // ---- introspection ----------------------------------------------

    /** The stats (plus current quarantine/guard depths) as a JSON
     *  object, for nvalloc_fsck --json and nvalloc_stat. */
    std::string json() const;

  private:
    struct QuarantinedBlock
    {
        VSlab *slab = nullptr;
        unsigned idx = 0;
        uint64_t off = 0;
        unsigned block_size = 0;
    };

    struct WatchedGuard
    {
        uint64_t off = 0;
        GuardInfo info;
        uint64_t epoch = 0; //!< extent reuse epoch at free time
    };

    static void
    bump(std::atomic<uint64_t> &a, uint64_t n = 1)
    {
        a.fetch_add(n, std::memory_order_relaxed);
    }

    void evictOne(QuarantinedBlock b);
    void verifyWatchedGuard(const WatchedGuard &w);

    NvAlloc *owner_ = nullptr;
    PmDevice *dev_ = nullptr;
    Telemetry *tel_ = nullptr;
    HardeningPolicy policy_ = HardeningPolicy::Report;
    unsigned quarantine_cap_ = 0;
    bool registered_ = false;

    /** Guards guard_map_, watch_, quarantine_ and reports_. Never held
     *  while taking an arena lock or the large allocator's lock — the
     *  containers are mutated first, slab/extent work happens after
     *  the mutex is dropped. */
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, GuardInfo> guard_map_;
    std::deque<WatchedGuard> watch_;
    std::deque<QuarantinedBlock> quarantine_;
    std::deque<CorruptionReport> reports_;

    HardeningStats stats_;
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_HARDENING_H
