#include "nvalloc/nvalloc.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/logging.h"
#include "pm/vclock.h"

namespace nvalloc {

namespace {

constexpr uint64_t kRegionTableOffset = 512; // within the root area
constexpr uint64_t kMallocCpuNs = 40;
constexpr uint64_t kFreeCpuNs = 40;

/**
 * Serialized portion of one lock-free fast op, booked against the
 * arena's virtual-time capacity server (Arena::bookFastOp). This is
 * the cache-line ping of a handful of CAS/fetch-ops — tens of ns —
 * where the locked path serialized the whole markAllocated hold
 * including its metadata flush. The gap between the two is the fast
 * path's modeled win.
 */
constexpr uint64_t kFastOpNs = 12;
/** Extra serialized ns per CAS loss in a reservation's claim loop. */
constexpr uint64_t kCasRetryNs = 25;
/** Serialized cost of one region-batch reservation (many claims). */
constexpr uint64_t kFastReserveNs = 60;

} // namespace

OpenResult
NvAlloc::open(PmDevice &dev, const NvAllocConfig &cfg)
{
    OpenResult r;
    if (const char *why = cfg.invalidReason()) {
        NV_WARN(why);
        r.status = NvStatus::InvalidArgument;
        return r; // nothing constructed, device untouched
    }
    // Not make_unique: the constructor is private to force every
    // caller through this factory.
    r.heap.reset(new NvAlloc(dev, cfg));
    // A degraded heap (CorruptMetadata) is still returned: read-only
    // introspection over the corrupt image is the whole point of the
    // failed-open mode.
    r.status = r.heap->openStatus();
    return r;
}

std::unique_ptr<NvAlloc>
NvAlloc::openOrDie(PmDevice &dev, const NvAllocConfig &cfg)
{
    OpenResult r = open(dev, cfg);
    NV_ASSERT(r.status != NvStatus::InvalidArgument &&
              "NvAlloc::openOrDie: invalid NvAllocConfig");
    NV_ASSERT(r.heap);
    return std::move(r.heap);
}

NvAlloc::NvAlloc(PmDevice &dev, NvAllocConfig cfg)
    : dev_(dev), cfg_(cfg),
      sb_(static_cast<NvSuperblock *>(dev.root())),
      region_table_(reinterpret_cast<uint64_t *>(
          static_cast<char *>(dev.root()) + kRegionTableOffset)),
      region_slots_(unsigned((PmDevice::kRootSize - kRegionTableOffset) /
                             sizeof(uint64_t)))
{
    NV_ASSERT(cfg_.num_arenas >= 1 && cfg_.num_arenas <= kMaxArenas);
    NV_ASSERT(cfg_.bit_stripes >= 1 && cfg_.bit_stripes <= 32);
    wal_slot_used_.assign(kMaxThreads, false);

    static_assert(kMaxArenas <= kTelemetryMaxArenas,
                  "telemetry per-arena flush array too small");

    // Telemetry observes everything from here on, including heap
    // creation and recovery flushes (attributed to arena 0 until the
    // thread binds one).
    tel_.setEnabled(cfg_.telemetry);
    if (cfg_.trace_ring_capacity)
        tel_.startTracing(cfg_.trace_ring_capacity);
    tel_.attachSink(&dev_.model());
    log_.setTelemetry(&tel_);

    if (sb_->magic == kSuperMagic)
        recoverHeap();
    else
        createHeap();

    if (open_failed_) {
        // Failed open: root metadata could not be trusted. Touch no PM
        // (the corrupt image must stay inspectable), hand out no
        // threads, start no maintenance thread, and behave like a
        // crashed instance on destruction. The health machine lands in
        // Quarantined so a pool member whose recovery failed is
        // contained exactly like one the patrol caught.
        mode_.store(HeapMode::Failed, std::memory_order_relaxed);
        escalateHealth(HeapHealth::Quarantined,
                       "open failed: root metadata untrusted");
        crashed_ = true;
        return;
    }
    setArenaStates(ArenaState::Running);
    initMaintenance();
    // After recovery: recoverHeap may have adopted the image's canary
    // flag into cfg_, and a failed open must never enter the
    // cross-heap registry (it owns nothing).
    hardening_.init(this, &dev_, &tel_, cfg_);
}

void
NvAlloc::initMaintenance()
{
    MaintenanceService::Wiring w;
    w.dev = &dev_;
    w.large = &large_;
    w.log = usesBookkeepingLog() ? &log_ : nullptr;
    w.tel = &tel_;
    w.failed_allocs = [this] {
        return deg_stats_.failed_allocs.load(std::memory_order_relaxed);
    };
    w.quarantine_depth = [this] {
        return uint64_t(sb_->quarantine_count);
    };
    w.request_trim = [this] { requestTcacheTrim(); };
    if (cfg_.patrol_scrub)
        w.patrol = [this] { return patrolSlice(); };
    // Ranges the scrub pass must never rewrite, live or not: the
    // superblock root area, the WAL rings, and the log region (all
    // mapped outside the large allocator's region table).
    w.protected_ranges.emplace_back(0, PmDevice::kRootSize);
    w.protected_ranges.emplace_back(
        sb_->wal_off, uint64_t(kMaxThreads) * kWalRingBytes);
    if (usesBookkeepingLog())
        w.protected_ranges.emplace_back(sb_->log_off, sb_->log_bytes);
    maint_.init(std::move(w), cfg_);
    maint_.start();
}

void
NvAlloc::requestTcacheTrim()
{
    std::lock_guard<std::mutex> g(attach_mutex_);
    for (ThreadCtx *ctx : ctxs_)
        ctx->trim_pending.store(true, std::memory_order_relaxed);
}

NvStatus
NvAlloc::maintenanceControl(const char *action)
{
    if (!action)
        return NvStatus::InvalidArgument;
    if (std::strcmp(action, "pause") == 0) {
        maint_.pause();
        return NvStatus::Ok;
    }
    if (std::strcmp(action, "resume") == 0) {
        maint_.resume();
        return NvStatus::Ok;
    }
    if (std::strcmp(action, "step") == 0) {
        maint_.step();
        return NvStatus::Ok;
    }
    if (std::strcmp(action, "wake") == 0) {
        maint_.wake(MaintWakeReason::Explicit);
        return NvStatus::Ok;
    }
    return NvStatus::InvalidArgument;
}

void
NvAlloc::simulateCrash()
{
    // Stop maintenance before rolling the device back: a slice
    // persisting mid-rollback would tear the "power failed" fiction.
    maint_.shutdown();
    // Forget guards and the quarantine without touching slabs — the
    // "process" died, and the next open must not find us registered.
    hardening_.shutdown(/*crashed=*/true);
    dev_.crash();
    crashed_ = true;
}

void
NvAlloc::dirtyRestart()
{
    maint_.shutdown();
    hardening_.shutdown(/*crashed=*/true);
    setArenaStates(ArenaState::Running);
    crashed_ = true;
}

NvAlloc::~NvAlloc()
{
    // Maintenance first — even on the crashed path — so no slice can
    // run into a heap being dismantled.
    maint_.shutdown();

    // Detach from the device's flush stream next. attachSink leaves
    // the model alone if a newer heap on the same device has already
    // replaced us as the sink.
    tel_.attachSink(nullptr);

    if (crashed_) {
        // The process "died": free only DRAM state, touch no PM.
        hardening_.shutdown(/*crashed=*/true);
        std::lock_guard<std::mutex> g(attach_mutex_);
        for (ThreadCtx *ctx : ctxs_)
            delete ctx;
        ctxs_.clear();
        return;
    }
    // nvalloc_exit: evict the delayed-reuse quarantine (returns lent
    // blocks to their arenas while those still exist), drain any
    // still-attached threads' tcaches so no block stays lent, then
    // make the GC variant's bitmaps durable.
    hardening_.shutdown(/*crashed=*/false);
    {
        std::lock_guard<std::mutex> g(attach_mutex_);
        for (ThreadCtx *ctx : ctxs_) {
            // Clean shutdown mid-transaction: roll back, exactly like
            // a detach would — recovery must find nothing in flight.
            if (ctx->tx.open())
                txAbort(*ctx);
            drainTcache(ctx);
            delete ctx;
        }
        ctxs_.clear();
    }
    if (gcMode()) {
        // Only the GC variant defers bitmap persistence to shutdown.
        for (auto &arena : arenas_)
            arena->persistAllBitmaps();
    }
    setArenaStates(ArenaState::NormalShutdown);
}

void
NvAlloc::setArenaStates(ArenaState state)
{
    for (unsigned i = 0; i < cfg_.num_arenas; ++i)
        sb_->arena_state[i] = uint32_t(state);
    dev_.persistFence(sb_->arena_state, sizeof(sb_->arena_state),
                      TimeKind::FlushMeta);
}

void
NvAlloc::createHeap()
{
    std::memset(sb_, 0, PmDevice::kRootSize);

    sb_->version = kSuperVersion;
    sb_->num_arenas = cfg_.num_arenas;
    sb_->stripes = cfg_.bit_stripes;
    sb_->consistency = logMode() ? 0 : (gcMode() ? 1 : 2);
    sb_->hardening_flags =
        cfg_.redzone_canaries ? kHardeningFlagCanaries : 0;

    sb_->wal_off = dev_.mapRegion(kMaxThreads * kWalRingBytes);
    if (usesBookkeepingLog()) {
        sb_->log_off = dev_.mapRegion(cfg_.log_file_bytes);
        sb_->log_bytes = cfg_.log_file_bytes;
        log_.attach(&dev_, sb_->log_off, sb_->log_bytes,
                    cfg_.interleaved_log, cfg_.flush_enabled,
                    cfg_.log_gc_threshold, /*create=*/true);
    }
    large_.init(&dev_, cfg_, usesBookkeepingLog() ? &log_ : nullptr,
                region_table_, region_slots_);

    for (unsigned i = 0; i < cfg_.num_arenas; ++i) {
        arenas_.push_back(std::make_unique<Arena>(
            i, &dev_, &cfg_, &large_, &slab_radix_,
            &attached_threads_));
        arenas_.back()->setTelemetry(&tel_);
        arenas_.back()->setFastPathStats(&fp_stats_);
    }

    // Publish the superblock last: the config crc goes durable with
    // the body, then magic commits the format.
    sb_->sb_crc = superblockCrc(*sb_);
    dev_.persistFence(sb_, PmDevice::kRootSize, TimeKind::FlushMeta);
    sb_->magic = kSuperMagic;
    dev_.persistFence(sb_, kCacheLine, TimeKind::FlushMeta);
}

bool
NvAlloc::isQuarantined(uint64_t off) const
{
    unsigned n = std::min(sb_->quarantine_count, kQuarantineSlots);
    for (unsigned i = 0; i < n; ++i) {
        if (sb_->quarantine[i] == off)
            return true;
    }
    return false;
}

std::vector<uint64_t>
NvAlloc::quarantinedSlabs() const
{
    unsigned n = std::min(sb_->quarantine_count, kQuarantineSlots);
    return std::vector<uint64_t>(sb_->quarantine, sb_->quarantine + n);
}

void
NvAlloc::quarantineSlab(uint64_t off)
{
    ++recovery_.slabs_quarantined;
    if (isQuarantined(off))
        return;
    if (sb_->quarantine_count >= kQuarantineSlots) {
        // List full: the slab is still skipped this run, but the
        // refusal will have to be re-derived after the next crash.
        NV_WARN("quarantine list full; slab refusal not recorded");
        return;
    }
    // Persist the slot before the count: the count commits the entry,
    // so a crash between the two flushes loses at most the record,
    // never publishes a garbage offset.
    sb_->quarantine[sb_->quarantine_count] = off;
    dev_.persistFence(&sb_->quarantine[sb_->quarantine_count],
                      sizeof(uint64_t), TimeKind::FlushMeta);
    ++sb_->quarantine_count;
    dev_.persistFence(&sb_->quarantine_count, sizeof(uint32_t),
                      TimeKind::FlushMeta);
}

ThreadCtx *
NvAlloc::attachThread()
{
    std::lock_guard<std::mutex> g(attach_mutex_);

    if (open_failed_) {
        failOp(open_status_);
        ++deg_stats_.failed_attaches;
        return nullptr;
    }

    // Claim a WAL slot before touching any shared counters so slot
    // exhaustion can back out without unwinding anything.
    unsigned slot = kMaxThreads;
    for (unsigned i = 0; i < kMaxThreads; ++i) {
        if (!wal_slot_used_[i]) {
            slot = i;
            wal_slot_used_[i] = true;
            break;
        }
    }
    if (slot == kMaxThreads) {
        failOp(NvStatus::TooManyThreads);
        ++deg_stats_.failed_attaches;
        return nullptr;
    }

    // Least-loaded arena (paper §4.2), with ties broken round-robin:
    // when threads attach and detach sequentially (as they do under a
    // single-core scheduler) all counts tie at zero, and a fixed
    // scan-from-0 would funnel every thread into arena 0's
    // virtual-time window history.
    Arena *best = nullptr;
    for (unsigned i = 0; i < arenas_.size(); ++i) {
        Arena *cand = arenas_[(attach_cursor_ + i) % arenas_.size()].get();
        if (!best ||
            cand->thread_count.load() < best->thread_count.load()) {
            best = cand;
        }
    }
    attach_cursor_ = (best->id() + 1) % unsigned(arenas_.size());
    best->thread_count.fetch_add(1);
    attached_threads_.fetch_add(1);

    // Attribute this thread's flush classes to its arena from now on
    // (attachThread runs on the attaching thread itself).
    tel_.bindArena(best->id());

    auto *ctx = new ThreadCtx(this, best, cfg_.bit_stripes,
                              cfg_.interleaved_tcache, cfg_.tcache_slots,
                              slot);
    // A recycled slot may hold entries of a previous thread whose
    // sequence numbers would shadow ours at replay; start clean.
    uint64_t ring_off = sb_->wal_off + uint64_t(slot) * kWalRingBytes;
    std::memset(dev_.at(ring_off), 0, kWalRingBytes);
    dev_.persistFence(dev_.at(ring_off), kWalRingBytes,
                      TimeKind::FlushWal);
    ctx->wal.attach(&dev_, sb_->wal_off + uint64_t(slot) * kWalRingBytes,
                    cfg_.interleaved_wal, cfg_.bit_stripes,
                    cfg_.flush_enabled);
    ctxs_.push_back(ctx);
    return ctx;
}

void
NvAlloc::drainTcache(ThreadCtx *ctx)
{
    ctx->tcache.drain([](unsigned, const CachedBlock &b) {
        Arena *arena = b.slab->arena;
        VLockGuard g(arena->lock);
        arena->returnLent(b.slab, b.idx);
    });
}

void
NvAlloc::detachThread(ThreadCtx *ctx)
{
    // A detach mid-transaction rolls the transaction back: the staged
    // registry must not outlive the thread that can resolve it.
    if (ctx->tx.open())
        txAbort(*ctx);
    drainTcache(ctx);
    ctx->arena->thread_count.fetch_sub(1);
    attached_threads_.fetch_sub(1);
    std::lock_guard<std::mutex> g(attach_mutex_);
    wal_slot_used_[ctx->wal_slot] = false;
    // Keep the departing ring's append count for stats.wal.commits
    // (the slot's sequence restarts at zero on the next attach).
    wal_retired_commits_ += ctx->wal.sequence();
    ctxs_.erase(std::find(ctxs_.begin(), ctxs_.end(), ctx));
    delete ctx;
}

uint64_t
NvAlloc::walCommits()
{
    std::lock_guard<std::mutex> g(attach_mutex_);
    uint64_t sum = wal_retired_commits_;
    for (const ThreadCtx *ctx : ctxs_)
        sum += ctx->wal.sequence();
    return sum;
}

uint64_t *
NvAlloc::rootWord(unsigned idx)
{
    NV_ASSERT(idx < kNumGcRoots);
    return &sb_->gc_roots[idx];
}

VSlab *
NvAlloc::slabOf(uint64_t off) const
{
    return static_cast<VSlab *>(slab_radix_.get(off));
}

void
NvAlloc::publish(uint64_t *where, uint64_t value)
{
    if (!where)
        return;
    *where = value;
    if (dev_.contains(where))
        dev_.persistFence(where, sizeof(uint64_t), TimeKind::FlushData);
}

NvStatus
NvAlloc::failOp(NvStatus why)
{
    last_status_.store(why, std::memory_order_relaxed);
    return why;
}

void
NvAlloc::setMode(HeapMode m)
{
    // Load-then-store instead of an unconditional store: the common
    // case (already Normal, staying Normal) must not dirty the mode
    // line on every allocation. Transition counts are best-effort
    // under concurrent racing transitions, like the mode itself.
    if (mode_.load(std::memory_order_relaxed) == m)
        return;
    mode_.store(m, std::memory_order_relaxed);
    switch (m) {
    case HeapMode::Reclaiming:
        tel_.add(StatCounter::ModeToReclaiming);
        break;
    case HeapMode::Exhausted:
        tel_.add(StatCounter::ModeToExhausted);
        break;
    case HeapMode::Normal:
        tel_.add(StatCounter::ModeToNormal);
        break;
    case HeapMode::Failed:
        break;
    }
    tel_.event(TraceOp::ModeChange, uint64_t(m));
}

uint64_t
NvAlloc::failAlloc()
{
    NvStatus why = large_.lastFailure();
    if (why == NvStatus::Ok)
        why = NvStatus::OutOfMemory;
    failOp(why);
    setMode(HeapMode::Exhausted);
    ++deg_stats_.failed_allocs;
    tel_.noteAllocFailed(uint16_t(why));
    return 0;
}

void
NvAlloc::reclaimMemory(ThreadCtx &ctx)
{
    // Exhaustion slow path: give back everything this thread pins
    // (lent tcache blocks keep otherwise-free slabs alive), then force
    // the large allocator's log GC and decay pass so tombstoned log
    // entries and demoted extents stop holding space.
    setMode(HeapMode::Reclaiming);
    ++deg_stats_.reclaim_attempts;
    tel_.event(TraceOp::Reclaim, 0);
    drainTcache(&ctx);
    // Region pins hold otherwise-free slabs against release; drop
    // every arena's CoreCache slots (they re-provision on the next
    // locked refill) so exhaustion can actually reclaim them.
    for (auto &arena : arenas_)
        arena->dropRegions();
    // Quarantined blocks pin their slabs (they stay lent) and watched
    // guard extents hold reclaimed space; give both back before the
    // retry.
    hardening_.drainQuarantine();
    hardening_.sweepGuardWatch();
    if (maint_.active())
        maint_.reclaimSync(); // forced slice: log GC + decay + scrub
    else
        large_.reclaim();
}

/**
 * Tcache-miss escalation ladder (DESIGN.md §14): lock-free reservation
 * from the own arena's region slabs, then the own arena's locked
 * refill (freelist/morph/new-slab search — which also reprovisions the
 * region slots), and only then the sibling arenas: their regions
 * first (lock-free steal), their locked refills last.
 *
 * Stealing deliberately ranks BELOW the own locked refill. A steal
 * puts a sibling's slab into this thread's tcache, and every later
 * hit on those blocks books against the sibling's fast-op server —
 * measured on thread-local workloads, eager stealing collapsed twenty
 * arenas' worth of parallelism onto a few shared servers (and starved
 * the own regions, which only a locked refill reprovisions). The own
 * arena's lock is uncontended in exactly those workloads, so it is
 * the cheaper escalation; siblings are raided only when the own arena
 * is truly dry (heap or quota exhaustion).
 */
unsigned
NvAlloc::refillSmall(ThreadCtx &ctx, unsigned cls)
{
    if (cfg_.fastpath == FastPathMode::LockFree) {
        unsigned got = ctx.arena->fastReserve(ctx.tcache, cls);
        if (got > 0) {
            // The reserve's scan-and-claim CPU is real extra work
            // (the hit path's own advance does not cover it), unlike
            // the per-hit booking which only models serialization.
            ctx.arena->bookFastOp(kFastReserveNs);
            VClock::advance(kFastReserveNs, TimeKind::Other);
            return got;
        }
    }
    unsigned got = ctx.arena->refill(ctx.tcache, cls);
    if (got > 0)
        return got;
    // The home arena is dry: no freelist slab, no morph candidate, and
    // a fresh slab was refused. Search the siblings — regions first
    // (no lock), then their locked refills, which can also morph or
    // carve a slab the steal cannot see. Only after every arena
    // refuses does the caller escalate to reclaim.
    if (cfg_.fastpath == FastPathMode::LockFree) {
        for (unsigned i = 1; i < arenas_.size(); ++i) {
            Arena &peer =
                *arenas_[(ctx.arena->id() + i) % arenas_.size()];
            got = peer.fastReserve(ctx.tcache, cls);
            if (got > 0) {
                fp_stats_.region_steals.fetch_add(
                    1, std::memory_order_relaxed);
                peer.bookFastOp(kFastReserveNs);
                VClock::advance(kFastReserveNs, TimeKind::Other);
                return got;
            }
        }
    }
    for (unsigned i = 1; i < arenas_.size(); ++i) {
        Arena &peer = *arenas_[(ctx.arena->id() + i) % arenas_.size()];
        got = peer.refill(ctx.tcache, cls);
        if (got > 0) {
            fp_stats_.region_steals.fetch_add(1,
                                              std::memory_order_relaxed);
            return got;
        }
    }
    return 0;
}

uint64_t
NvAlloc::allocSmall(ThreadCtx &ctx, size_t size, uint64_t where_off)
{
    // With canaries on, the block must also hold the canary word, so
    // the class is chosen for size + 8 (smallLimit() keeps size + 8
    // representable).
    unsigned cls = sizeToClass(
        cfg_.redzone_canaries ? size + HardeningManager::kCanaryBytes
                              : size);

    CachedBlock blk;
    bool tcache_hit = ctx.tcache.pop(cls, blk);
    if (!tcache_hit) {
        // Cooperative trim: the maintenance service cannot touch other
        // threads' caches, so it flags them and each thread drains its
        // own on the next refill boundary (never on the hit path).
        if (ctx.trim_pending.exchange(false, std::memory_order_relaxed))
            drainTcache(&ctx);
        refillSmall(ctx, cls);
        if (!ctx.tcache.pop(cls, blk)) {
            reclaimMemory(ctx);
            refillSmall(ctx, cls);
            if (!ctx.tcache.pop(cls, blk))
                return failAlloc();
            ++deg_stats_.reclaim_successes;
        }
    }
    setMode(HeapMode::Normal);

    // Stamp the canary before the block is published anywhere. Not
    // flushed — recovery restamps every allocated block, so a torn
    // canary line can never read as an application stomp.
    if (cfg_.redzone_canaries)
        stampCanary(blk.off, classToSize(cls));

    // Journal first (LOG only: the GC variant rebuilds from
    // reachability and the IC variant's bitmaps are self-describing),
    // then persist the allocation bit; the attach word write that
    // commits the operation happens in the caller.
    if (logMode())
        ctx.wal.append(kWalAlloc, blk.off, where_off, size,
                       ctx.journal_tx_id);

    // The ISSUE 9 hit path: publish the allocation bit through the
    // slab's atomic state under the fast-op gate — no VLock (the
    // VLockFreeScope assert enforces exactly that in debug builds).
    // The gate only fails while the slab is frozen (morph, repair,
    // release), which routes through the locked fallback below.
    bool fast_done = false;
    if (cfg_.fastpath == FastPathMode::LockFree &&
        blk.slab->enterFast()) {
        {
            VLockFreeScope nolock;
            blk.slab->markAllocated(blk.idx);
            blk.slab->exitFast();
        }
        blk.slab->arena->bookFastOp(kFastOpNs);
        fast_done = true;
    }
    if (!fast_done) {
        if (cfg_.fastpath == FastPathMode::LockFree) {
            fp_stats_.locked_fallbacks.fetch_add(
                1, std::memory_order_relaxed);
        }
        VLockGuard g(blk.slab->arena->lock);
        blk.slab->markAllocated(blk.idx);
    }
    VClock::advance(kMallocCpuNs, TimeKind::Other);
    tel_.noteSmallAlloc(cls, tcache_hit, blk.off);
    return blk.off;
}

uint64_t
NvAlloc::allocLarge(ThreadCtx &ctx, size_t size, uint64_t where_off)
{
    maint_.pollLogPressure();
    // Large allocations journal in both variants (paper Table 2), and
    // the WAL entry must reach media before the extent's own
    // bookkeeping-log entry does: the pre-log hook runs once an extent
    // is chosen, so a crash between the two durability points leaves a
    // WAL intent recovery can undo — not an activated extent that no
    // journal (and no transaction run) knows about.
    bool journaled = false;
    auto journal = [&](uint64_t off) {
        ctx.wal.append(kWalAlloc, off, where_off, size,
                       ctx.journal_tx_id);
        journaled = true;
    };
    uint64_t off = large_.allocate(size, false, journal);
    if (off == 0) {
        if (journaled) // extent chosen, then its log append refused
            ctx.wal.retireNewest();
        if (large_.lastFailure() == NvStatus::InvalidArgument)
            return failAlloc(); // unrepresentable size; retry is moot
        reclaimMemory(ctx);
        journaled = false;
        off = large_.allocate(size, false, journal);
        if (off == 0) {
            if (journaled)
                ctx.wal.retireNewest();
            return failAlloc();
        }
        ++deg_stats_.reclaim_successes;
    }
    setMode(HeapMode::Normal);
    VClock::advance(kMallocCpuNs, TimeKind::Other);
    tel_.noteLargeAlloc(size, off);
    return off;
}

// ---- health & containment (pool.h, DESIGN.md §12) -------------------

/**
 * Containment gate shared by the mutating entry points: with
 * fault_containment on, a Degraded/Quarantined heap refuses allocation
 * and free traffic (reads, stats, audit and fsck-repair keep working).
 * Returns true when the operation must be refused, having already
 * recorded why.
 */
bool
NvAlloc::refuseUnhealthy()
{
    if (!cfg_.fault_containment)
        return false;
    HeapHealth h = health_.load(std::memory_order_relaxed);
    if (unsigned(h) < unsigned(HeapHealth::Degraded))
        return false;
    health_stats_.rejected_ops.fetch_add(1, std::memory_order_relaxed);
    failOp(NvStatus::HeapUnhealthy);
    return true;
}

void
NvAlloc::escalateHealth(HeapHealth to, const char *reason)
{
    if (unsigned(to) < unsigned(HeapHealth::Degraded))
        return; // Serving/Scrubbing are not escalation targets
    HeapHealth cur = health_.load(std::memory_order_relaxed);
    do {
        if (unsigned(cur) >= unsigned(to))
            return; // upward-only: Quarantined sticks over Degraded
    } while (!health_.compare_exchange_weak(cur, to,
                                            std::memory_order_relaxed));
    health_stats_.escalations.fetch_add(1, std::memory_order_relaxed);
    NV_WARN((std::string("heap health escalated to ") +
             heapHealthName(to) + ": " + (reason ? reason : "?"))
                .c_str());
    if (health_hook_)
        health_hook_(to, reason ? reason : "");
}

NvStatus
NvAlloc::restoreHealth()
{
    if (open_failed_)
        return failOp(open_status_); // nothing to audit against
    HeapAuditor aud(*this);
    AuditReport rep = aud.audit();
    if (!rep.clean())
        return failOp(NvStatus::CorruptMetadata);
    HeapHealth prev =
        health_.exchange(HeapHealth::Serving, std::memory_order_relaxed);
    if (unsigned(prev) >= unsigned(HeapHealth::Degraded))
        health_stats_.restores.fetch_add(1, std::memory_order_relaxed);
    return NvStatus::Ok;
}

unsigned
NvAlloc::patrolSlice()
{
    if (open_failed_)
        return 0; // a failed open trusts nothing; fsck owns the image
    std::lock_guard<std::mutex> g(patrol_mu_);

    // Publish Scrubbing for the duration of the walk, but only from
    // Serving: the CAS can never mask a Degraded/Quarantined state
    // another detector put up first.
    HeapHealth expect = HeapHealth::Serving;
    bool published = health_.compare_exchange_strong(
        expect, HeapHealth::Scrubbing, std::memory_order_relaxed);

    HeapAuditor aud(*this);
    PatrolSliceResult r = aud.patrolStep(
        patrol_cursor_, cfg_.patrol_items, cfg_.patrol_retries);

    if (published) {
        expect = HeapHealth::Scrubbing;
        health_.compare_exchange_strong(expect, HeapHealth::Serving,
                                        std::memory_order_relaxed);
    }

    scrub_stats_.slices.fetch_add(1, std::memory_order_relaxed);
    scrub_stats_.items.fetch_add(r.items, std::memory_order_relaxed);
    scrub_stats_.findings.fetch_add(r.findings,
                                    std::memory_order_relaxed);
    scrub_stats_.repaired.fetch_add(r.repaired,
                                    std::memory_order_relaxed);
    scrub_stats_.retries.fetch_add(r.retries, std::memory_order_relaxed);
    if (r.wrapped)
        scrub_stats_.passes.fetch_add(1, std::memory_order_relaxed);

    if (r.findings) {
        // Damage the patrol repaired in place (slab headers) degrades
        // the heap; damage it cannot derive a fix for (superblock,
        // region table, log chain, stable bitmap drift) quarantines it
        // until fsck repairs the image and restoreHealth() re-audits.
        escalateHealth(r.repaired >= r.findings
                           ? HeapHealth::Degraded
                           : HeapHealth::Quarantined,
                       r.notes.empty() ? "patrol finding"
                                       : r.notes.front().c_str());
    }
    return r.items;
}

std::string
NvAlloc::healthJson() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"state\":\"%s\",\"escalations\":%llu,\"restores\":%llu,"
        "\"rejected_ops\":%llu,\"scrub\":{\"slices\":%llu,"
        "\"items\":%llu,\"findings\":%llu,\"repaired\":%llu,"
        "\"retries\":%llu,\"passes\":%llu}}",
        heapHealthName(health_.load(std::memory_order_relaxed)),
        (unsigned long long)health_stats_.escalations.load(
            std::memory_order_relaxed),
        (unsigned long long)health_stats_.restores.load(
            std::memory_order_relaxed),
        (unsigned long long)health_stats_.rejected_ops.load(
            std::memory_order_relaxed),
        (unsigned long long)scrub_stats_.slices.load(
            std::memory_order_relaxed),
        (unsigned long long)scrub_stats_.items.load(
            std::memory_order_relaxed),
        (unsigned long long)scrub_stats_.findings.load(
            std::memory_order_relaxed),
        (unsigned long long)scrub_stats_.repaired.load(
            std::memory_order_relaxed),
        (unsigned long long)scrub_stats_.retries.load(
            std::memory_order_relaxed),
        (unsigned long long)scrub_stats_.passes.load(
            std::memory_order_relaxed));
    return buf;
}

// ---- hardening hooks (hardening.h, DESIGN.md §9) --------------------

/** Largest request the small path serves: with canaries on, the last
 *  8 bytes of the largest class are the canary word, so a full-size
 *  request must go to the large allocator instead. */
size_t
NvAlloc::smallLimit() const
{
    return cfg_.redzone_canaries
               ? kSmallMax - HardeningManager::kCanaryBytes
               : kSmallMax;
}

bool
NvAlloc::guardDue(ThreadCtx &ctx)
{
    if (++ctx.guard_tick < cfg_.guard_sample_rate)
        return false;
    ctx.guard_tick = 0;
    return true;
}

/**
 * Serve a sampled small allocation from a dedicated guard extent: the
 * 16 KB extent grain guarantees at least a cache line of tail past any
 * small request, which is filled with the redzone pattern and verified
 * at free. Falls back to the ordinary small path if the large
 * allocator cannot serve the extent — sampling must never turn a
 * servable allocation into a failure.
 */
uint64_t
NvAlloc::guardAlloc(ThreadCtx &ctx, size_t size, uint64_t where_off)
{
    maint_.pollLogPressure();
    // Journal like any large allocation (and like allocLarge, via the
    // pre-log hook so the WAL entry is durable before the extent's log
    // entry): after a crash the guard is recovered as a plain activated
    // extent (its registration is volatile, so the redzone is no longer
    // checked — documented best-effort).
    bool journaled = false;
    uint64_t off = large_.allocate(
        size + kCacheLine, false, [&](uint64_t o) {
            ctx.wal.append(kWalAlloc, o, where_off, size);
            journaled = true;
        });
    if (off == 0) {
        if (journaled)
            ctx.wal.retireNewest();
        return allocSmall(ctx, size, where_off);
    }
    setMode(HeapMode::Normal);
    Veh *veh = large_.findVeh(off); // just allocated by this thread
    NV_ASSERT(veh && veh->off == off);
    hardening_.armGuard(off, size, veh->size);
    VClock::advance(kMallocCpuNs, TimeKind::Other);
    tel_.noteLargeAlloc(veh->size, off);
    return off;
}

NvStatus
NvAlloc::guardFree(ThreadCtx &ctx, uint64_t off, uint64_t *where,
                   uint64_t where_off)
{
    HardeningManager::GuardInfo info;
    if (!hardening_.takeGuard(off, &info))
        return rejectFree(off, CorruptionKind::DoubleFree);
    if (!hardening_.guardRedzoneIntact(off, info)) {
        hardening_.report(
            CorruptionKind::GuardOverflow, off, ~0u,
            "guard redzone dirtied — overflow past the allocation");
    }
    ctx.wal.append(kWalFree, off, where_off, 0);
    publish(where, 0);
    // Poison the user area, retire the extent, and watch it: a
    // use-after-free write lands in the poison fill, which the watch
    // list verifies (under the large allocator's lock) while the
    // extent is still reclaimed.
    std::memset(dev_.at(off), HardeningManager::kGuardFreeByte,
                info.user_size);
    large_.free(off);
    hardening_.watchFreedGuard(off, info);
    hardening_.noteGuardFree();
    VClock::advance(kFreeCpuNs, TimeKind::Other);
    tel_.noteLargeFree(info.extent_size, off);
    maint_.pollLogPressure();
    return NvStatus::Ok;
}

/** Reject a free: classify it, bump the degradation and hardening
 *  counters, run the report/policy machinery, and leave the heap (and
 *  the WAL) untouched. */
NvStatus
NvAlloc::rejectFree(uint64_t off, CorruptionKind kind)
{
    ++deg_stats_.invalid_frees;
    tel_.noteInvalidFree(off, uint16_t(NvStatus::InvalidFree));
    if (cfg_.hardened_free) {
        // A locally-unowned offset that another live heap owns is the
        // classic cross-heap free; only probed on the cold reject
        // path, and only when nothing local claimed the offset.
        if (kind == CorruptionKind::WildFree &&
            hardening_.ownedByAnotherHeap(off)) {
            kind = CorruptionKind::CrossHeapFree;
        }
        hardening_.report(kind, off, ~0u,
                          std::string("rejected free (") +
                              corruptionKindName(kind) + ")");
    }
    return failOp(NvStatus::InvalidFree);
}

void
NvAlloc::stampCanary(uint64_t off, unsigned block_size)
{
    uint64_t *w = reinterpret_cast<uint64_t *>(
        static_cast<char *>(dev_.at(off)) + block_size -
        HardeningManager::kCanaryBytes);
    *w = HardeningManager::canaryValue(off);
}

bool
NvAlloc::canaryOk(uint64_t off, unsigned block_size) const
{
    const uint64_t *w = reinterpret_cast<const uint64_t *>(
        static_cast<const char *>(dev_.at(off)) + block_size -
        HardeningManager::kCanaryBytes);
    return *w == HardeningManager::canaryValue(off);
}

/**
 * Recovery epilogue: rewrite the canary of every allocated small
 * block (current and old geometry). Canaries are deliberately never
 * flushed, so after a crash they may hold torn or stale words; without
 * the restamp every post-crash free would report a phantom stomp.
 */
void
NvAlloc::restampCanaries()
{
    if (!cfg_.redzone_canaries)
        return;
    forEachAllocated([this](uint64_t off, size_t size, bool small) {
        if (small)
            stampCanary(off, unsigned(size));
    });
}

bool
NvAlloc::ownsOffset(uint64_t off) const
{
    if (off == 0 || off >= dev_.size())
        return false;
    if (slabOf(off))
        return true;
    Veh *veh = large_.findVeh(off);
    return veh && veh->state == Veh::State::Activated;
}

uint64_t
NvAlloc::allocOffset(ThreadCtx &ctx, size_t size, uint64_t *where)
{
    // See freeOffset: plain ops would shadow the open tx run's WAL
    // resolution; the tx surface (txAlloc) is the way to allocate here.
    if (ctx.tx.open()) {
        tx_mgr_.stats().plain_ops_rejected.fetch_add(
            1, std::memory_order_relaxed);
        failOp(NvStatus::InvalidArgument);
        return 0;
    }
    if (refuseUnhealthy()) {
        ++deg_stats_.failed_allocs;
        tel_.noteAllocFailed(uint16_t(NvStatus::HeapUnhealthy));
        return 0;
    }
    if (size == 0) {
        failOp(NvStatus::InvalidArgument);
        ++deg_stats_.failed_allocs;
        tel_.noteAllocFailed(uint16_t(NvStatus::InvalidArgument));
        return 0;
    }
    uint64_t where_off =
        where && dev_.contains(where) ? dev_.offsetOf(where) : kWalNoWhere;

    uint64_t off;
    if (size <= smallLimit()) {
        off = cfg_.hardened_free && cfg_.guard_sample_rate &&
                      guardDue(ctx)
                  ? guardAlloc(ctx, size, where_off)
                  : allocSmall(ctx, size, where_off);
    } else {
        off = allocLarge(ctx, size, where_off);
    }
    if (off == 0)
        return 0; // failed allocation publishes nothing
    publish(where, off);
    return off;
}

void *
NvAlloc::mallocTo(ThreadCtx &ctx, size_t size, uint64_t *where)
{
    uint64_t off = allocOffset(ctx, size, where);
    return off ? dev_.at(off) : nullptr;
}

/**
 * Lock-free small free (DESIGN.md §14). Returns true with `st` set
 * when the free was fully handled here — including rejections, which
 * are arbitrated by the freeing-bitfield so exactly one of two racing
 * frees of a block proceeds. Returns false (nothing mutated) when the
 * fast path declines: slab frozen (morph/repair/release in flight) or
 * morphing — the caller then runs the locked pipeline.
 */
bool
NvAlloc::tryFastFree(ThreadCtx &ctx, VSlab *slab, uint64_t off,
                     uint64_t *where, uint64_t where_off, NvStatus &st)
{
    if (!slab->enterFast())
        return false; // frozen: morph/repair in flight, or released

    // Morphing slabs keep the locked pipeline: old-geometry blocks
    // need the index-table walk and the tcache bypass. Stable inside
    // the gate — a morph cannot start until the gate drains.
    if (slab->morphing()) {
        slab->exitFast();
        return false;
    }

    unsigned idx = slab->blockIndexOf(off);
    if (idx >= slab->capacity() || slab->blockOffset(idx) != off) {
        slab->exitFast();
        st = rejectFree(off, CorruptionKind::MisalignedFree);
        return true;
    }
    // Exactly one of two racing frees of the same block proceeds. The
    // persistent bit cannot arbitrate — journal-first ordering clears
    // it only after the WAL append — so a dedicated claim bit does.
    // A set claim bit is NOT itself a double-free verdict: the
    // previous free of this block clears the allocation bit before
    // releasing its claim, so a refill can re-grant the block — and
    // the new owner re-free it — inside that instruction-scale
    // window. Wait out the in-flight free, then re-arbitrate; a true
    // double-free resolves below through the allocation bit.
    unsigned spins = 0;
    while (!slab->tryBeginFree(idx)) {
        if (++spins >= 128) {
            std::this_thread::yield();
            spins = 0;
        }
    }
    if (!slab->isAllocated(idx)) {
        slab->endFree(idx);
        slab->exitFast();
        st = rejectFree(off, CorruptionKind::DoubleFree);
        return true;
    }

    unsigned cls = slab->sizeClass();
    // Mostly-idle slabs are morph candidates; blocks freed into a
    // tcache would pin them (same rule as the locked pipeline).
    bool keep_unpinned = cfg_.slab_morphing &&
                         slab->occupancy() <= cfg_.morph_threshold;
    bool to_tcache = !keep_unpinned && !ctx.tcache.full(cls);
    {
        // Journal, clear the attach word, then clear + persist the
        // bit — the same WAL discipline as the locked path, minus the
        // mutex (enforced in debug by the scope assert).
        VLockFreeScope nolock;
        if (logMode())
            ctx.wal.append(kWalFree, off, where_off, 0);
        publish(where, 0);
        if (to_tcache)
            slab->markFreeToTcache(idx);
        else
            slab->markFree(idx);
        slab->endFree(idx);
        slab->exitFast();
    }
    slab->arena->bookFastOp(kFastOpNs);
    if (to_tcache) {
        bool ok = ctx.tcache.push(cls, CachedBlock{off, slab, idx});
        NV_ASSERT(ok);
    } else {
        // The freelists don't know about this availability yet; hand
        // the slab to the next locked refill via the pending stack.
        slab->arena->pendingPush(slab);
    }
    hardening_.noteValidatedFree();
    VClock::advance(kFreeCpuNs, TimeKind::Other);
    tel_.noteSmallFree(cls, off);
    st = NvStatus::Ok;
    return true;
}

/**
 * The hardened free pipeline: one ordered validator shared by free,
 * free_from and the C API. Provenance (guard registry → slab radix →
 * extent radix) decides the path; each path validates *inside* the
 * critical section that also journals and mutates, so validation and
 * mutation see the same state — the PR 3/4 seed race was an unlocked
 * bitmap probe that raced markAllocated/morphTo under the arena lock.
 * Rejections are classified (rejectFree) and leave the WAL and the
 * heap untouched.
 */
NvStatus
NvAlloc::freeOffset(ThreadCtx &ctx, uint64_t off, uint64_t *where)
{
    // While this thread holds an open transaction, an untagged entry at
    // its ring tail would shadow the run's all-or-nothing resolution
    // after a crash — plain ops are rejected until commit/abort.
    if (ctx.tx.open()) {
        tx_mgr_.stats().plain_ops_rejected.fetch_add(
            1, std::memory_order_relaxed);
        return failOp(NvStatus::InvalidArgument);
    }
    if (refuseUnhealthy())
        return NvStatus::HeapUnhealthy;
    if (off == 0 || off >= dev_.size())
        return rejectFree(off, CorruptionKind::WildFree);
    // A block staged by ANY open transaction (allocated-but-unpublished
    // or pending a deferred free) is off-limits to plain free until
    // the transaction resolves. One relaxed load when no tx is staging.
    if (tx_mgr_.isStaged(off))
        return rejectFree(off, CorruptionKind::TxStagedFree);

    uint64_t where_off =
        where && dev_.contains(where) ? dev_.offsetOf(where) : kWalNoWhere;

    // Guard extents first: underneath they are large extents, but
    // their free verifies the redzone and poisons the user area.
    if (cfg_.hardened_free && cfg_.guard_sample_rate &&
        hardening_.isGuard(off)) {
        return guardFree(ctx, off, where, where_off);
    }

    VSlab *slab = slabOf(off);
    if (!slab) {
        // Large extent: validate before journaling anything. A foreign
        // offset (no extent, mid-extent, free extent, or a slab's
        // interior) must leave both the WAL and the heap untouched.
        Veh *veh = large_.findVeh(off);
        if (!veh)
            return rejectFree(off, CorruptionKind::WildFree);
        if (veh->off != off)
            return rejectFree(off, CorruptionKind::MisalignedFree);
        if (veh->state != Veh::State::Activated)
            return rejectFree(off, CorruptionKind::DoubleFree);
        if (veh->is_slab)
            return rejectFree(off, CorruptionKind::MisalignedFree);
        // Journal, clear the attach word, then retire.
        uint64_t veh_size = veh->size;
        ctx.wal.append(kWalFree, off, where_off, 0);
        publish(where, 0);
        large_.free(off);
        hardening_.noteValidatedFree();
        VClock::advance(kFreeCpuNs, TimeKind::Other);
        tel_.noteLargeFree(veh_size, off);
        maint_.pollLogPressure(); // the tombstone may cross the wake level
        return NvStatus::Ok;
    }

    // Lock-free small free (DESIGN.md §14): eligible when no hardening
    // feature needs the big critical section (canary verification and
    // the quarantine FIFO keep the locked pipeline; those legs stay
    // green through the fallback below). A false return means the
    // fast path declined (frozen or morphing slab) — fall through.
    if (cfg_.fastpath == FastPathMode::LockFree &&
        !cfg_.redzone_canaries && cfg_.quarantine_depth == 0 &&
        hardening_.policy() != HardeningPolicy::Quarantine) {
        NvStatus st;
        if (tryFastFree(ctx, slab, off, where, where_off, st))
            return st;
        fp_stats_.locked_fallbacks.fetch_add(1,
                                             std::memory_order_relaxed);
    }

    Arena *arena = slab->arena;
    unsigned cls = 0;
    bool to_tcache = false;
    bool to_quarantine = false;
    unsigned bsize = 0;
    unsigned idx = 0;
    {
        // One critical section: validate (alignment, double free,
        // canary) against the same state the journal/publish/bitmap
        // mutation will see. The WAL and attach-word flushes inside
        // the hold grow the modeled critical section — that is the
        // honest cost of a race-free validator.
        VLockGuard g(arena->lock);
        unsigned old_idx = 0;
        if (slab->isOldBlock(off, old_idx)) {
            // blocks_before bypass the tcache (paper §5.2).
            unsigned old_cls = slab->header()->old_size_class;
            if (cfg_.redzone_canaries &&
                !canaryOk(off, classToSize(old_cls))) {
                hardening_.report(CorruptionKind::CanaryStomp, off,
                                  old_cls,
                                  "old-geometry block canary dirtied");
                // Report policy: leak the block (it stays allocated,
                // the audit stays clean); Quarantine has no lent-block
                // path for old-geometry blocks, so it leaks too.
                hardening_.noteLeakedBlock();
                publish(where, 0);
                return NvStatus::Ok;
            }
            if (logMode())
                ctx.wal.append(kWalFree, off, where_off, 0);
            publish(where, 0);
            arena->freeOld(slab, old_idx);
            hardening_.noteValidatedFree();
            VClock::advance(kFreeCpuNs, TimeKind::Other);
            tel_.noteSmallFree(old_cls, off);
            return NvStatus::Ok;
        }
        idx = slab->blockIndexOf(off);
        if (idx >= slab->capacity() || slab->blockOffset(idx) != off)
            return rejectFree(off, CorruptionKind::MisalignedFree);
        if (!slab->isAllocated(idx))
            return rejectFree(off, CorruptionKind::DoubleFree);
        cls = slab->sizeClass();
        bsize = slab->blockSize();
        if (cfg_.redzone_canaries && !canaryOk(off, bsize)) {
            hardening_.report(CorruptionKind::CanaryStomp, off, cls,
                              "block canary dirtied — overflow into "
                              "the canary word");
            if (hardening_.policy() != HardeningPolicy::Quarantine) {
                // Report-and-leak: the persistent bit stays set, the
                // caller's word is cleared, nothing is journaled.
                hardening_.noteLeakedBlock();
                publish(where, 0);
                return NvStatus::Ok;
            }
            // Quarantine policy: complete the free below, but force
            // the block through the delayed-reuse FIFO.
        }
        if (logMode())
            ctx.wal.append(kWalFree, off, where_off, 0);
        publish(where, 0);
        // Mostly-idle slabs are morph candidates; blocks freed into a
        // tcache (or the quarantine — both keep the block lent) would
        // pin them, so their frees bypass both, like blocks_before do
        // (§5.2).
        bool keep_unpinned =
            cfg_.slab_morphing &&
            slab->occupancy() <= cfg_.morph_threshold;
        bool quarantine_on =
            cfg_.quarantine_depth > 0 ||
            (cfg_.redzone_canaries &&
             hardening_.policy() == HardeningPolicy::Quarantine);
        if (quarantine_on && !keep_unpinned) {
            slab->markFreeToTcache(idx);
            to_quarantine = true;
        } else if (ctx.tcache.full(cls) || keep_unpinned) {
            arena->freeDirect(slab, idx);
        } else {
            slab->markFreeToTcache(idx);
            arena->noteAvailable(slab);
            to_tcache = true;
        }
    }
    if (to_tcache) {
        bool ok = ctx.tcache.push(
            cls, CachedBlock{off, slab, idx});
        NV_ASSERT(ok);
    } else if (to_quarantine) {
        // Outside the arena lock: evicting the FIFO's oldest entry
        // locks that entry's (possibly different) arena.
        hardening_.quarantinePush(slab, idx, off, bsize);
    }
    hardening_.noteValidatedFree();
    VClock::advance(kFreeCpuNs, TimeKind::Other);
    tel_.noteSmallFree(cls, off);
    return NvStatus::Ok;
}

NvStatus
NvAlloc::freeFrom(ThreadCtx &ctx, uint64_t *where)
{
    if (!where || *where == 0) {
        ++deg_stats_.invalid_frees;
        tel_.noteInvalidFree(0, uint16_t(NvStatus::InvalidFree));
        return failOp(NvStatus::InvalidFree);
    }
    return freeOffset(ctx, *where, where);
}

void
NvAlloc::forEachAllocated(
    const std::function<void(uint64_t, size_t, bool)> &fn)
{
    for (auto &arena : arenas_) {
        arena->forEachSlab([&](VSlab *slab) {
            for (unsigned idx = 0; idx < slab->capacity(); ++idx) {
                if (slab->isAllocated(idx))
                    fn(slab->blockOffset(idx), slab->blockSize(), true);
            }
            // blocks_before of a morphing slab are allocated objects
            // under the old geometry.
            const SlabHeader *hdr = slab->header();
            if (slab->morphing()) {
                SlabGeometry old = SlabGeometry::compute(
                    hdr->old_size_class, hdr->stripes);
                for (unsigned i = 0; i < hdr->index_count; ++i) {
                    uint16_t entry = hdr->index_table[i];
                    if (entry & kIndexAllocated) {
                        unsigned old_idx = entry & kIndexBlockMask;
                        fn(slab->slabOffset() + kSlabHeaderSize +
                               uint64_t(old_idx) * old.block_size,
                           old.block_size, true);
                    }
                }
            }
        });
    }
    large_.forEachActivated([&](Veh *veh) {
        if (!veh->is_slab)
            fn(veh->off, veh->size, false);
    });
}

std::array<uint64_t, 3>
NvAlloc::slabUtilizationBytes()
{
    std::array<uint64_t, 3> buckets{0, 0, 0};
    for (auto &arena : arenas_) {
        arena->forEachSlab([&](VSlab *slab) {
            double occ = slab->occupancy();
            unsigned b = occ < 0.3 ? 0 : occ < 0.7 ? 1 : 2;
            buckets[b] += kSlabSize;
        });
    }
    return buckets;
}

} // namespace nvalloc
