/**
 * @file
 * Interleaved mapping (paper §5.1, Fig. 4).
 *
 * Consecutive blocks of a slab map to bits in *different* bit stripes,
 * each stripe padded out to its own cache line(s), so a burst of
 * consecutive allocations flushes S distinct lines instead of
 * re-flushing one. The same index transform interleaves WAL entries
 * and bookkeeping-log entries within their buffers.
 *
 * With S stripes of `per_stripe` usable bit slots each:
 *     bit(b)  = (b mod S) * padded_stripe_bits + b div S
 * so blocks b, b+1, ..., b+S-1 land in stripes 0..S-1.
 */

#ifndef NVALLOC_NVALLOC_INTERLEAVE_H
#define NVALLOC_NVALLOC_INTERLEAVE_H

#include <cstdint>

#include "common/size_classes.h"

namespace nvalloc {

/** Geometry of one interleaved bitmap/entry array. */
struct InterleaveMap
{
    unsigned stripes = 1;          //!< S; 1 disables interleaving
    unsigned slots = 0;            //!< total logical slots (bits/entries)
    unsigned per_stripe = 0;       //!< logical slots per stripe
    unsigned padded_stripe = 0;    //!< physical slots per stripe

    /**
     * Build a map for `slots` slots of `slot_bits` bits each, using up
     * to `stripes` stripes, padding each stripe to a whole number of
     * cache lines. Stripe count is clamped so every stripe gets at
     * least one slot.
     */
    static InterleaveMap
    build(unsigned slots, unsigned slot_bits, unsigned stripes)
    {
        InterleaveMap m;
        m.slots = slots;
        if (stripes < 1)
            stripes = 1;
        if (stripes > slots && slots > 0)
            stripes = slots;
        m.stripes = stripes;
        m.per_stripe = (slots + stripes - 1) / stripes;

        unsigned line_slots = kCacheLine * 8 / slot_bits;
        m.padded_stripe =
            ((m.per_stripe + line_slots - 1) / line_slots) * line_slots;
        return m;
    }

    /** Physical slot index of logical slot `i`. */
    unsigned
    physical(unsigned i) const
    {
        if (stripes == 1)
            return i;
        return (i % stripes) * padded_stripe + i / stripes;
    }

    /** Inverse of physical(). */
    unsigned
    logical(unsigned phys) const
    {
        if (stripes == 1)
            return phys;
        unsigned stripe = phys / padded_stripe;
        unsigned within = phys % padded_stripe;
        return within * stripes + stripe;
    }

    /** Total physical slots (bitmap size in slots). */
    unsigned physicalSlots() const { return stripes * padded_stripe; }
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_INTERLEAVE_H
