/**
 * @file
 * Per-thread write-ahead log (NVAlloc-LOG consistency, paper §4.1).
 *
 * Each thread owns a small persistent ring of WAL entries. An
 * allocation/free journals its intent before touching metadata, so a
 * crash between the journal write and the metadata/attach updates is
 * resolved by replay (paper: "All memory leaks can be resolved by
 * replaying the WALs"). Because a thread finishes one operation before
 * starting the next, only the newest entry can be in flight; appending
 * the next entry implicitly commits the previous one, so each
 * operation costs exactly one WAL flush.
 *
 * Entries are placed into the ring through the same InterleaveMap as
 * slab bitmaps: with interleaving on, consecutive entries land in
 * different cache lines and WAL flushes stop re-flushing the line they
 * just flushed (Table 2: IM(WAL)).
 */

#ifndef NVALLOC_NVALLOC_WAL_H
#define NVALLOC_NVALLOC_WAL_H

#include <atomic>
#include <cstdint>

#include "common/logging.h"
#include "nvalloc/interleave.h"
#include "nvalloc/layout.h"
#include "pm/pm_device.h"

namespace nvalloc {

class Wal
{
  public:
    Wal() = default;

    /** Attach to a persistent ring at device offset `ring_off`. */
    void
    attach(PmDevice *dev, uint64_t ring_off, bool interleaved,
           unsigned stripes, bool flush_enabled)
    {
        dev_ = dev;
        ring_ = static_cast<WalEntry *>(dev->at(ring_off));
        map_ = InterleaveMap::build(kWalRingEntries,
                                    sizeof(WalEntry) * 8,
                                    interleaved ? stripes : 1);
        NV_ASSERT(map_.physicalSlots() * sizeof(WalEntry) <=
                  kWalRingBytes);
        flush_ = flush_enabled;
        seq_.store(0, std::memory_order_relaxed);
    }

    bool attached() const { return ring_ != nullptr; }

    /** Journal one operation and flush the entry's line. A nonzero
     *  `tx_id` tags the entry as one op of that transaction
     *  (tx_mark kWalTxOp); the fast path passes 0 and pays nothing. */
    void
    append(WalOp op, uint64_t block_off, uint64_t where_off,
           uint64_t size, uint32_t tx_id = 0)
    {
        appendRaw(op, block_off, where_off, size, tx_id,
                  tx_id != 0 ? kWalTxOp : kWalTxNone);
    }

    /** Journal a transaction control record (commit, abort, or
     *  applied seal) for `tx_id`. `op_count` rides in the offset bits
     *  so the auditor can cross-check the run length. The append's own
     *  persist+fence is the commit point; the caller fences *before*
     *  calling so the record lands in its own epoch after every op
     *  entry. */
    void
    appendTxMark(uint32_t tx_id, WalTxMark mark, uint64_t op_count)
    {
        NV_ASSERT(mark == kWalTxCommit || mark == kWalTxAbort ||
                  mark == kWalTxApplied);
        appendRaw(kWalTxData, op_count, kWalNoWhere, 0, tx_id, mark);
    }

    /**
     * Failure unwind: scrub the newest entry — the one this thread
     * just appended for an operation that then failed (e.g. an extent
     * journalled pre-log whose bookkeeping-log append was refused) —
     * so replay never sees an intent for an operation that was
     * abandoned. Exposing the previous entry as newest is safe: it
     * describes a completed operation, which replay resolves
     * idempotently (the same state as crashing between operations).
     */
    void
    retireNewest()
    {
        uint64_t seq = seq_.load(std::memory_order_relaxed);
        NV_ASSERT(seq != 0);
        unsigned slot = map_.physical(seq % kWalRingEntries);
        WalEntry &e = ring_[slot];
        e.block_op = 0; // op bits kWalNone: replay skips the slot
        e.tx_id = 0;
        e.tx_mark = kWalTxNone;
        e.crc = walEntryCrc(e);
        if (flush_) {
            dev_->persist(&e, sizeof(e), TimeKind::FlushWal);
            dev_->fence();
        }
    }

    /** Entries ever appended since attach (== WAL commits: appending
     *  entry n implicitly commits entry n-1, and the newest entry is
     *  committed by its own trailing fence). */
    uint64_t
    sequence() const
    {
        return seq_.load(std::memory_order_relaxed);
    }

    /**
     * Replay helper: the newest *intact* entry of the ring at
     * `ring_off`, or nullptr if the ring holds none. Static because
     * replay runs before any Wal is attached.
     *
     * With `verify` on, an entry whose crc does not match or whose
     * line is media-poisoned is skipped and counted in `*rejected`. A
     * torn entry can only be the newest append (older entries were
     * implicitly committed by later ones), so skipping it means the
     * half-journaled operation is treated as never-started — exactly
     * the undo semantics replay needs.
     */
    static const WalEntry *
    newestEntry(PmDevice *dev, uint64_t ring_off,
                unsigned *rejected = nullptr, bool verify = true)
    {
        auto *ring = static_cast<const WalEntry *>(dev->at(ring_off));
        const WalEntry *best = nullptr;
        unsigned n = kWalRingBytes / sizeof(WalEntry);
        for (unsigned i = 0; i < n; ++i) {
            const WalEntry &e = ring[i];
            if ((e.block_op & 3) == kWalNone)
                continue;
            if (verify) {
                // One crc over a cached line: a handful of cycles on
                // real hardware, charged as part of the ring read.
                if (dev->isPoisoned(&e, sizeof(e)) ||
                    e.crc != walEntryCrc(e)) {
                    if (rejected)
                        ++*rejected;
                    continue;
                }
            }
            if (!best || e.seq > best->seq)
                best = &e;
        }
        return best;
    }

    /**
     * Replay helper: call `fn(const WalEntry &)` for every intact
     * entry of the ring at `ring_off`, in no particular order. Same
     * verification rules as newestEntry(). Transaction resolution uses
     * this to gather a tx's whole run; callers sort by seq themselves.
     */
    template <typename Fn>
    static void
    forEachIntact(PmDevice *dev, uint64_t ring_off, Fn &&fn,
                  unsigned *rejected = nullptr)
    {
        auto *ring = static_cast<const WalEntry *>(dev->at(ring_off));
        unsigned n = kWalRingBytes / sizeof(WalEntry);
        for (unsigned i = 0; i < n; ++i) {
            const WalEntry &e = ring[i];
            if ((e.block_op & 3) == kWalNone)
                continue;
            if (dev->isPoisoned(&e, sizeof(e)) ||
                e.crc != walEntryCrc(e)) {
                if (rejected)
                    ++*rejected;
                continue;
            }
            fn(e);
        }
    }

  private:
    void
    appendRaw(WalOp op, uint64_t block_off, uint64_t where_off,
              uint64_t size, uint32_t tx_id, uint32_t tx_mark)
    {
        // seq 0 means "never used". Only the owning thread appends, so
        // a relaxed load+store increment suffices; it is atomic only
        // so stats readers on other threads (stats.wal.commits sums
        // the rings' sequences) race-freely observe it.
        uint64_t seq = seq_.load(std::memory_order_relaxed) + 1;
        seq_.store(seq, std::memory_order_relaxed);
        unsigned slot = map_.physical(seq % kWalRingEntries);
        WalEntry &e = ring_[slot];
        e.block_op = (block_off << 2) | uint64_t(op);
        e.seq = seq;
        e.where_off = where_off;
        e.size = size;
        e.tx_id = tx_id;
        e.tx_mark = tx_mark;
        e.crc = walEntryCrc(e);
        if (flush_) {
            dev_->persist(&e, sizeof(e), TimeKind::FlushWal);
            dev_->fence();
        }
    }

    PmDevice *dev_ = nullptr;
    WalEntry *ring_ = nullptr;
    InterleaveMap map_;
    bool flush_ = true;
    std::atomic<uint64_t> seq_{0};
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_WAL_H
