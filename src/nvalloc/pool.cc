#include "nvalloc/pool.h"

#include <utility>

#include "common/logging.h"
#include "nvalloc/auditor.h"

namespace nvalloc {

bool
HeapPool::sameConfig(const NvAllocConfig &a, const NvAllocConfig &b)
{
    return a.consistency == b.consistency &&
           a.interleaved_bitmap == b.interleaved_bitmap &&
           a.interleaved_tcache == b.interleaved_tcache &&
           a.interleaved_wal == b.interleaved_wal &&
           a.interleaved_log == b.interleaved_log &&
           a.bit_stripes == b.bit_stripes &&
           a.dynamic_stripes == b.dynamic_stripes &&
           a.slab_morphing == b.slab_morphing &&
           a.morph_threshold == b.morph_threshold &&
           a.log_bookkeeping == b.log_bookkeeping &&
           a.num_arenas == b.num_arenas &&
           a.tcache_slots == b.tcache_slots &&
           a.log_file_bytes == b.log_file_bytes &&
           a.log_gc_threshold == b.log_gc_threshold &&
           a.decay_window_ns == b.decay_window_ns &&
           a.flush_enabled == b.flush_enabled &&
           a.telemetry == b.telemetry &&
           a.trace_ring_capacity == b.trace_ring_capacity &&
           a.verify_recovery_checksums == b.verify_recovery_checksums &&
           a.maintenance_mode == b.maintenance_mode &&
           a.maintenance_slice_ns == b.maintenance_slice_ns &&
           a.maintenance_wake_fraction == b.maintenance_wake_fraction &&
           a.maintenance_interval_ms == b.maintenance_interval_ms &&
           a.maintenance_scrub_lines == b.maintenance_scrub_lines &&
           a.hardened_free == b.hardened_free &&
           a.guard_sample_rate == b.guard_sample_rate &&
           a.redzone_canaries == b.redzone_canaries &&
           a.quarantine_depth == b.quarantine_depth &&
           a.hardening_policy == b.hardening_policy &&
           a.patrol_scrub == b.patrol_scrub &&
           a.patrol_items == b.patrol_items &&
           a.patrol_retries == b.patrol_retries &&
           a.fault_containment == b.fault_containment &&
           a.capacity_quota_bytes == b.capacity_quota_bytes;
}

void
HeapPool::installHook(const std::string &name, NvAlloc *heap)
{
    // By contract the hook only records: it can fire under heap locks
    // (the canary validator escalates from inside the arena lock), so
    // it touches pool atomics and the leaf reason_mu_ — never mu_ and
    // never any heap.
    heap->setHealthHook([this, name](HeapHealth to, const char *why) {
        stats_.escalations.fetch_add(1, std::memory_order_relaxed);
        if (to == HeapHealth::Quarantined)
            stats_.quarantines.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> g(reason_mu_);
        last_reasons_[name] = why ? why : "";
    });
}

HeapPool::MemberResult
HeapPool::openLocked(const std::string &name, PmDevice &dev,
                     const NvAllocConfig &cfg)
{
    MemberResult res;
    OpenResult r = NvAlloc::open(dev, cfg);
    if (!r.heap) {
        res.status = r.status; // config rejected; nothing registered
        return res;
    }
    // A failed recovery is kept as a Quarantined member (the ctor
    // escalated it): siblings are independent heaps, and restore() /
    // per-heap fsck need the handle to repair the image.
    Member m;
    m.dev = &dev;
    m.cfg = cfg;
    m.heap = std::move(r.heap);
    installHook(name, m.heap.get());
    res.status = r.status;
    res.heap = m.heap.get();
    members_[name] = std::move(m);
    stats_.opens.fetch_add(1, std::memory_order_relaxed);
    return res;
}

HeapPool::MemberResult
HeapPool::open(const std::string &name, PmDevice &dev, NvAllocConfig cfg)
{
    // The pool's contract: members are fault-contained. Forced here so
    // the stored config (what a re-open must match) is the normalized
    // one.
    cfg.fault_containment = true;

    std::lock_guard<std::mutex> g(mu_);
    auto it = members_.find(name);
    if (it != members_.end()) {
        MemberResult res;
        if (!sameConfig(it->second.cfg, cfg)) {
            // Not silent first-wins: refuse, and record the refusal on
            // the existing member's sticky status so errno-style
            // probes (nvalloc_errno) observe the mismatch.
            stats_.option_mismatches.fetch_add(
                1, std::memory_order_relaxed);
            it->second.heap->failOp(NvStatus::InvalidArgument);
            NV_WARN(("pool: open of '" + name +
                     "' with different options refused")
                        .c_str());
            res.status = NvStatus::InvalidArgument;
            return res;
        }
        stats_.reopen_hits.fetch_add(1, std::memory_order_relaxed);
        res.status = it->second.heap->openStatus();
        res.heap = it->second.heap.get();
        res.existing = true;
        return res;
    }
    return openLocked(name, dev, cfg);
}

NvAlloc *
HeapPool::find(const std::string &name) const
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = members_.find(name);
    return it == members_.end() ? nullptr : it->second.heap.get();
}

NvStatus
HeapPool::close(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = members_.find(name);
    if (it == members_.end())
        return NvStatus::InvalidArgument;
    members_.erase(it); // ~NvAlloc: normal shutdown (or neutered)
    std::lock_guard<std::mutex> r(reason_mu_);
    last_reasons_.erase(name);
    return NvStatus::Ok;
}

HeapPool::MemberResult
HeapPool::reopen(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = members_.find(name);
    if (it == members_.end()) {
        MemberResult res;
        res.status = NvStatus::InvalidArgument;
        return res;
    }
    PmDevice &dev = *it->second.dev;
    NvAllocConfig cfg = it->second.cfg;
    members_.erase(it); // destroy first: one live heap per device
    return openLocked(name, dev, cfg);
}

NvStatus
HeapPool::restore(const std::string &name)
{
    NvAlloc *heap;
    {
        std::lock_guard<std::mutex> g(mu_);
        auto it = members_.find(name);
        if (it == members_.end())
            return NvStatus::InvalidArgument;
        heap = it->second.heap.get();
    }
    if (heap->openStatus() != NvStatus::Ok) {
        // The image failed recovery outright: a live-heap audit cannot
        // run. Re-open it — recovery already quarantines what it must
        // — and fall through to the repair pass on the fresh instance.
        MemberResult r = reopen(name);
        if (!r)
            return NvStatus::CorruptMetadata;
        heap = r.heap;
    }
    HeapAuditor aud(*heap);
    aud.repair();
    NvStatus s = heap->restoreHealth();
    if (s == NvStatus::Ok)
        stats_.restores.fetch_add(1, std::memory_order_relaxed);
    return s;
}

std::vector<std::string>
HeapPool::names() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::vector<std::string> out;
    out.reserve(members_.size());
    for (const auto &[name, m] : members_)
        out.push_back(name);
    return out;
}

size_t
HeapPool::size() const
{
    std::lock_guard<std::mutex> g(mu_);
    return members_.size();
}

std::vector<HeapPool::MemberHealth>
HeapPool::snapshot() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::vector<MemberHealth> out;
    out.reserve(members_.size());
    for (const auto &[name, m] : members_) {
        MemberHealth h;
        h.name = name;
        h.health = m.heap->health();
        h.escalations = m.heap->healthStats().escalations.load(
            std::memory_order_relaxed);
        h.rejected_ops = m.heap->healthStats().rejected_ops.load(
            std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> r(reason_mu_);
            auto it = last_reasons_.find(name);
            if (it != last_reasons_.end())
                h.last_reason = it->second;
        }
        out.push_back(std::move(h));
    }
    return out;
}

std::string
HeapPool::healthJson() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::string out = "{\"members\":{";
    bool first = true;
    for (const auto &[name, m] : members_) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += name; // member names come from code, not hostile input
        out += "\":";
        out += m.heap->healthJson();
    }
    out += "},\"stats\":{\"opens\":";
    out += std::to_string(stats_.opens.load(std::memory_order_relaxed));
    out += ",\"reopen_hits\":";
    out += std::to_string(
        stats_.reopen_hits.load(std::memory_order_relaxed));
    out += ",\"option_mismatches\":";
    out += std::to_string(
        stats_.option_mismatches.load(std::memory_order_relaxed));
    out += ",\"escalations\":";
    out += std::to_string(
        stats_.escalations.load(std::memory_order_relaxed));
    out += ",\"quarantines\":";
    out += std::to_string(
        stats_.quarantines.load(std::memory_order_relaxed));
    out += ",\"restores\":";
    out += std::to_string(
        stats_.restores.load(std::memory_order_relaxed));
    out += "}}";
    return out;
}

} // namespace nvalloc
