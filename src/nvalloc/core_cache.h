/**
 * @file
 * Per-core slab regions: the lock-free middle tier between tcaches and
 * arenas (ISSUE 9, DESIGN.md §14).
 *
 * Each arena owns a CoreCache holding a few pinned "region" slabs per
 * size class in atomic slots. A thread whose tcache runs dry first
 * tries to reserve a batch of blocks straight from a region slab —
 * enterFast gate, CAS bitfield claims, exitFast — touching no VLock.
 * Only when every region of its own arena (and then of every sibling
 * arena — region stealing) is exhausted does it fall back to the
 * locked Arena::refill, which also reprovisions the slots.
 *
 * Slot lifetime: install() pins a slab before publishing it and unpins
 * the slab it displaces; Arena::maybeRelease skips pinned slabs, so a
 * slot pointer is always safe to dereference. A slab that morphs while
 * slotted is caught by the in-gate class/morph re-check and simply
 * misses.
 */

#ifndef NVALLOC_NVALLOC_CORE_CACHE_H
#define NVALLOC_NVALLOC_CORE_CACHE_H

#include <atomic>
#include <cstdint>

#include "common/size_classes.h"
#include "nvalloc/slab.h"
#include "nvalloc/tcache.h"

namespace nvalloc {

/**
 * Heap-wide fast-path telemetry, surfaced as the stats.fastpath.* ctl
 * subtree and `nvalloc_stat --fastpath`. Relaxed increments: these are
 * diagnostic counters, not synchronization.
 */
struct FastPathStats
{
    std::atomic<uint64_t> reserve_hits{0};   //!< region reservations
    std::atomic<uint64_t> reserve_misses{0}; //!< regions dry / skipped
    std::atomic<uint64_t> cas_retries{0};    //!< bitfield CAS losses
    std::atomic<uint64_t> region_steals{0};  //!< sibling-arena refills
    std::atomic<uint64_t> refill_searches{0}; //!< locked tree searches
    std::atomic<uint64_t> locked_fallbacks{0}; //!< hot ops via VLock
};

class CoreCache
{
  public:
    static constexpr unsigned kMaxRegions = 8;

    explicit CoreCache(unsigned nregions)
        : nregions_(nregions < 1 ? 1
                    : nregions > kMaxRegions ? kMaxRegions
                                             : nregions)
    {
    }

    unsigned regions() const { return nregions_; }

    /**
     * Lock-free: claim up to `batch` blocks of `cls` from the region
     * slabs into `tcache`. Returns the number reserved; counts a hit
     * or a miss (and any CAS retries) into `stats`.
     */
    unsigned reserve(unsigned cls, TCache &tcache, unsigned batch,
                     FastPathStats *stats);

    /**
     * Publish `slab` as a region for `cls`, displacing the slot the
     * rotor points at. Pins the new slab before it becomes visible and
     * unpins the displaced one. Caller holds the arena lock.
     */
    void install(unsigned cls, VSlab *slab);

    /** Empty every slot and drop its pin, so reclaimMemory can release
     *  fully-free region slabs. Caller holds the arena lock. */
    void dropRegions();

  private:
    unsigned nregions_;
    std::atomic<VSlab *> slots_[kNumSizeClasses][kMaxRegions] = {};
    unsigned rotor_[kNumSizeClasses] = {}; //!< install cursor (locked)
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_CORE_CACHE_H
