#include "nvalloc/slab.h"

#include <cstring>

#include "common/logging.h"

namespace nvalloc {

VSlab::VSlab(PmDevice *dev, uint64_t slab_off, unsigned cls,
             unsigned stripes, bool flush_enabled, bool gc_mode)
    : dev_(dev), slab_off_(slab_off),
      hdr_(static_cast<SlabHeader *>(dev->at(slab_off))),
      geo_(SlabGeometry::compute(cls, stripes)),
      flush_(flush_enabled), gc_mode_(gc_mode)
{
    NV_ASSERT(geo_.map.physicalSlots() <= kSlabBitmapBytes * 8);

    // The extent arrives zeroed (fresh mapping or recycled hole), so
    // the bitmap and index table are already clear; only the fixed
    // fields need writing.
    hdr_->magic = kSlabMagic;
    hdr_->size_class = uint16_t(cls);
    hdr_->flag = 0;
    hdr_->data_offset = kSlabHeaderSize;
    hdr_->capacity = uint16_t(geo_.capacity);
    hdr_->stripes = uint16_t(geo_.map.stripes);
    hdr_->old_size_class = 0;
    hdr_->old_data_offset_k = kSlabHeaderSize / kCacheLine;
    hdr_->index_count = 0;
    hdr_->old_capacity = 0;
    persistHeaderLine(hdr_, kCacheLine);
    if (flush_)
        dev_->fence();

    avail_ = geo_.capacity;
}

VSlab::VSlab(PmDevice *dev, uint64_t slab_off, bool flush_enabled,
             bool gc_mode)
    : dev_(dev), slab_off_(slab_off),
      hdr_(static_cast<SlabHeader *>(dev->at(slab_off))),
      flush_(flush_enabled), gc_mode_(gc_mode)
{
    NV_ASSERT(hdr_->magic == kSlabMagic);

    // Crash during morphing: flag records the completed steps. Steps
    // 1-2 only stage copies (old_* fields, index_table); the original
    // geometry is intact, so undo by discarding the staging. After
    // step 3 the new geometry is fully persistent, so roll forward.
    if (hdr_->flag == 1 || hdr_->flag == 2) {
        hdr_->index_count = 0;
        setFlag(0);
    } else if (hdr_->flag == 3) {
        setFlag(0);
    }

    geo_ = SlabGeometry::compute(hdr_->size_class, hdr_->stripes);

    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (bitmapTest(pbitmapWords(), geo_.map.physical(idx))) {
            bitmapSet(vbitmap_, idx);
            ++live_;
        }
    }
    avail_ = geo_.capacity - live_;

    if (hdr_->index_count > 0)
        rebuildMorphState();
}

unsigned
VSlab::blockIndexOf(uint64_t off) const
{
    if (off < slab_off_ + kSlabHeaderSize)
        return geo_.capacity;
    uint64_t rel = off - slab_off_ - kSlabHeaderSize;
    if (rel % geo_.block_size != 0)
        return geo_.capacity;
    uint64_t idx = rel / geo_.block_size;
    return idx < geo_.capacity ? unsigned(idx) : geo_.capacity;
}

unsigned
VSlab::popBlock()
{
    size_t idx = bitmapFindFirstZero(vbitmap_, geo_.capacity);
    if (idx == geo_.capacity)
        return geo_.capacity;
    bitmapSet(vbitmap_, idx);
    --avail_;
    ++lent_;
    return unsigned(idx);
}

unsigned
VSlab::popBlockSpread()
{
    // One bitmap cache line covers 512 physical bit positions; with
    // stripes that is 512/stripes logical blocks per line-visit.
    unsigned line_blocks = (kCacheLine * 8) / geo_.map.stripes;
    if (line_blocks == 0)
        line_blocks = 1;
    unsigned nlines = (geo_.capacity + line_blocks - 1) / line_blocks;
    for (unsigned probe = 0; probe < nlines; ++probe) {
        unsigned line = spread_rotor_ % nlines;
        ++spread_rotor_;
        unsigned begin = line * line_blocks;
        unsigned end = begin + line_blocks;
        if (end > geo_.capacity)
            end = geo_.capacity;
        for (unsigned idx = begin; idx < end; ++idx) {
            if (!bitmapTest(vbitmap_, idx)) {
                bitmapSet(vbitmap_, idx);
                --avail_;
                ++lent_;
                return idx;
            }
        }
    }
    return geo_.capacity;
}

void
VSlab::unlendBlock(unsigned idx)
{
    NV_ASSERT(lent_ > 0 && bitmapTest(vbitmap_, idx));
    bitmapClear(vbitmap_, idx);
    --lent_;
    ++avail_;
}

void
VSlab::markAllocated(unsigned idx)
{
    NV_ASSERT(lent_ > 0);
    --lent_;
    ++live_;
    persistBit(idx, true);
}

void
VSlab::claimBlock(unsigned idx)
{
    NV_ASSERT(!bitmapTest(vbitmap_, idx));
    bitmapSet(vbitmap_, idx);
    --avail_;
    ++live_;
    persistBit(idx, true);
}

void
VSlab::markFree(unsigned idx)
{
    NV_ASSERT(live_ > 0);
    --live_;
    ++avail_;
    bitmapClear(vbitmap_, idx);
    persistBit(idx, false);
}

void
VSlab::markFreeToTcache(unsigned idx)
{
    NV_ASSERT(live_ > 0);
    --live_;
    ++lent_;
    persistBit(idx, false);
}

void
VSlab::persistBit(unsigned idx, bool set)
{
    unsigned phys = geo_.map.physical(idx);
    if (set)
        bitmapSet(pbitmapWords(), phys);
    else
        bitmapClear(pbitmapWords(), phys);

    // NVAlloc-GC never flushes per-block metadata (paper §4.1): the
    // post-crash GC rebuilds it, trading recovery time for allocation
    // speed.
    if (flush_ && !gc_mode_) {
        dev_->flushLine(hdr_->bitmap + phys / 8, TimeKind::FlushMeta);
        dev_->fence();
    }
}

void
VSlab::persistHeaderLine(const void *addr, size_t len)
{
    if (flush_)
        dev_->persist(addr, len, TimeKind::FlushMeta);
}

void
VSlab::setFlag(uint16_t flag)
{
    hdr_->flag = flag;
    persistHeaderLine(hdr_, kCacheLine);
    if (flush_)
        dev_->fence();
}

bool
VSlab::morphEligible(double threshold) const
{
    return hdr_->flag == 0 && !morphing() && lent_ == 0 &&
           live_ > 0 && live_ <= kIndexTableCap &&
           occupancy() <= threshold;
}

void
VSlab::morphTo(unsigned new_cls, unsigned stripes)
{
    NV_ASSERT(morphEligible(1.0) && new_cls != geo_.size_class);

    // Step 1: stage the old geometry (paper Fig. 5).
    hdr_->old_size_class = uint16_t(geo_.size_class);
    hdr_->old_data_offset_k = kSlabHeaderSize / kCacheLine;
    hdr_->old_capacity = uint16_t(geo_.capacity);
    setFlag(1);

    // Step 2: record every live old block in the index table.
    unsigned n = 0;
    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (bitmapTest(pbitmapWords(), geo_.map.physical(idx)))
            hdr_->index_table[n++] = uint16_t(idx) | kIndexAllocated;
    }
    NV_ASSERT(n == live_ && n <= kIndexTableCap);
    hdr_->index_count = uint16_t(n);
    persistHeaderLine(hdr_->index_table, n * sizeof(uint16_t));
    setFlag(2);

    // Step 3: install the new geometry; the old allocation info now
    // lives only in the index table.
    old_geo_ = geo_;
    geo_ = SlabGeometry::compute(new_cls, stripes);
    hdr_->size_class = uint16_t(new_cls);
    hdr_->capacity = uint16_t(geo_.capacity);
    hdr_->stripes = uint16_t(geo_.map.stripes);
    std::memset(hdr_->bitmap, 0, kSlabBitmapBytes);
    persistHeaderLine(hdr_->bitmap, kSlabBitmapBytes);
    setFlag(3);

    // Commit and rebuild the volatile morph state.
    setFlag(0);
    rebuildMorphState();
}

void
VSlab::rebuildMorphState()
{
    old_geo_ = SlabGeometry::compute(hdr_->old_size_class, hdr_->stripes);
    cnt_slab_ = 0;
    cnt_block_.assign(geo_.capacity, 0);
    std::memset(vbitmap_, 0, sizeof(vbitmap_));
    live_ = 0;
    lent_ = 0;

    // Current-geometry allocations (none right after a morph; present
    // when rebuilding a slab_in during recovery).
    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (bitmapTest(pbitmapWords(), geo_.map.physical(idx))) {
            bitmapSet(vbitmap_, idx);
            ++live_;
        }
    }

    for (unsigned i = 0; i < hdr_->index_count; ++i) {
        uint16_t entry = hdr_->index_table[i];
        if (!(entry & kIndexAllocated))
            continue;
        ++cnt_slab_;
        unsigned old_idx = entry & kIndexBlockMask;
        uint64_t start = uint64_t(old_idx) * old_geo_.block_size;
        uint64_t end = start + old_geo_.block_size;
        unsigned first = unsigned(start / geo_.block_size);
        unsigned last = unsigned((end - 1) / geo_.block_size);
        for (unsigned nb = first; nb <= last && nb < geo_.capacity; ++nb) {
            if (cnt_block_[nb]++ == 0)
                bitmapSet(vbitmap_, nb);
        }
    }
    avail_ = geo_.capacity - bitmapPopcount(vbitmap_, geo_.capacity);

    if (cnt_slab_ == 0 && hdr_->index_count > 0)
        finishMorph();
}

bool
VSlab::isOldBlock(uint64_t off, unsigned &old_idx) const
{
    if (!morphing())
        return false;
    uint64_t rel = off - slab_off_ - kSlabHeaderSize;

    // A handed-out current-geometry block always has its bit set, and
    // new blocks are never handed out while old blocks overlap them,
    // so an allocated current bit is authoritative.
    if (rel % geo_.block_size == 0) {
        unsigned idx = unsigned(rel / geo_.block_size);
        if (idx < geo_.capacity && isAllocated(idx))
            return false;
    }
    if (rel % old_geo_.block_size != 0)
        return false;
    unsigned candidate = unsigned(rel / old_geo_.block_size);
    for (unsigned i = 0; i < hdr_->index_count; ++i) {
        if (hdr_->index_table[i] ==
            (uint16_t(candidate) | kIndexAllocated)) {
            old_idx = candidate;
            return true;
        }
    }
    return false;
}

bool
VSlab::freeOldBlock(unsigned old_idx)
{
    NV_ASSERT(morphing());
    unsigned entry_pos = hdr_->index_count;
    for (unsigned i = 0; i < hdr_->index_count; ++i) {
        if (hdr_->index_table[i] == (uint16_t(old_idx) | kIndexAllocated)) {
            entry_pos = i;
            break;
        }
    }
    NV_ASSERT(entry_pos < hdr_->index_count);

    // Paper §5.2 block release: update the entry's state and flush it;
    // blocks_before bypass the tcache.
    hdr_->index_table[entry_pos] = uint16_t(old_idx);
    if (flush_) {
        dev_->flushLine(&hdr_->index_table[entry_pos],
                        TimeKind::FlushMeta);
        dev_->fence();
    }
    --cnt_slab_;

    uint64_t start = uint64_t(old_idx) * old_geo_.block_size;
    uint64_t end = start + old_geo_.block_size;
    unsigned first = unsigned(start / geo_.block_size);
    unsigned last = unsigned((end - 1) / geo_.block_size);
    for (unsigned nb = first; nb <= last && nb < geo_.capacity; ++nb) {
        NV_ASSERT(cnt_block_[nb] > 0);
        if (--cnt_block_[nb] == 0) {
            bitmapClear(vbitmap_, nb);
            ++avail_;
        }
    }

    if (cnt_slab_ == 0) {
        finishMorph();
        return true;
    }
    return false;
}

void
VSlab::finishMorph()
{
    // The slab becomes a regular slab_after; the staging area is dead.
    hdr_->index_count = 0;
    persistHeaderLine(hdr_, kCacheLine);
    if (flush_)
        dev_->fence();
    cnt_slab_ = 0;
    cnt_block_.clear();
    cnt_block_.shrink_to_fit();
}

} // namespace nvalloc
