#include "nvalloc/slab.h"

#include <cstring>

#include "common/logging.h"

namespace nvalloc {

namespace {

/** (cls, stripes) name a reachable geometry (stripes not clamped). */
bool
targetValid(unsigned cls, unsigned stripes)
{
    return cls < kNumSizeClasses && stripes != 0 &&
           SlabGeometry::compute(cls, stripes).map.stripes == stripes;
}

/** (cls, capacity, stripes) form a self-consistent slab geometry. */
bool
geometryValid(unsigned cls, unsigned capacity, unsigned stripes)
{
    return targetValid(cls, stripes) &&
           capacity == SlabGeometry::compute(cls, stripes).capacity;
}

} // namespace

VSlab::VSlab(PmDevice *dev, uint64_t slab_off, unsigned cls,
             unsigned stripes, bool flush_enabled, bool gc_mode)
    : dev_(dev), slab_off_(slab_off),
      hdr_(static_cast<SlabHeader *>(dev->at(slab_off))),
      geo_(SlabGeometry::compute(cls, stripes)),
      flush_(flush_enabled), gc_mode_(gc_mode)
{
    NV_ASSERT(geo_.map.physicalSlots() <= kSlabBitmapBytes * 8);

    // The extent is NOT guaranteed to arrive zeroed: only fresh
    // mappings and recycled holes are, while an extent reused from the
    // reclaimed list keeps whatever its previous owner wrote there
    // (user data, a guard's redzone fill, ...). A stale bitmap or
    // index table would fabricate allocated blocks, so the header
    // establishes its own zero state before the fields are written.
    std::memset(hdr_, 0, kSlabHeaderSize);
    hdr_->magic = kSlabMagic;
    hdr_->size_class = uint16_t(cls);
    hdr_->flag = 0;
    hdr_->data_offset = kSlabHeaderSize;
    hdr_->capacity = uint16_t(geo_.capacity);
    hdr_->stripes = uint16_t(geo_.map.stripes);
    hdr_->old_size_class = 0;
    hdr_->old_data_offset_k = kSlabHeaderSize / kCacheLine;
    hdr_->index_count = 0;
    hdr_->old_capacity = 0;
    hdr_->old_stripes = 0;
    hdr_->new_size_class = 0;
    hdr_->new_stripes = 0;
    updateHeaderCrc();
    // Persist the whole header, not just the first line: the zeroed
    // bitmap and index table must reach media with the magic, or a
    // crash could recover a trusted header over the previous owner's
    // stale bytes.
    persistHeaderLine(hdr_, kSlabHeaderSize);
    if (flush_)
        dev_->fence();

    avail_.store(geo_.capacity, std::memory_order_relaxed);
}

VSlab::VSlab(PmDevice *dev, uint64_t slab_off, bool flush_enabled,
             bool gc_mode)
    : dev_(dev), slab_off_(slab_off),
      hdr_(static_cast<SlabHeader *>(dev->at(slab_off))),
      flush_(flush_enabled), gc_mode_(gc_mode)
{
    NV_ASSERT(hdr_->magic == kSlabMagic);

    // Crash during morphing: flag records the completed steps. Step 1
    // only stages copies (old_*/new_* fields); the original geometry
    // and bitmap are intact, so undo by discarding the staging. At
    // flag 2 the crash may have landed inside step 3's epoch, which
    // rewrites the geometry words and zeroes the bitmap — any subset
    // of those flushes can be durable — so roll back from the staged
    // old geometry (fenced at step 1) and the index table (fenced at
    // step 2), which are authoritative. After step 3 the new geometry
    // is committed but its words and the bitmap zeroing may still be
    // torn, so roll forward from the staged target.
    if (hdr_->flag == 1) {
        hdr_->index_count = 0;
        setFlag(0);
    } else if (hdr_->flag == 2) {
        if (geometryValid(hdr_->old_size_class, hdr_->old_capacity,
                          hdr_->old_stripes)) {
            SlabGeometry og = SlabGeometry::compute(hdr_->old_size_class,
                                                    hdr_->old_stripes);
            hdr_->size_class = uint16_t(og.size_class);
            hdr_->capacity = uint16_t(og.capacity);
            hdr_->stripes = uint16_t(og.map.stripes);
            std::memset(hdr_->bitmap, 0, kSlabBitmapBytes);
            for (unsigned i = 0; i < hdr_->index_count; ++i) {
                uint16_t entry = hdr_->index_table[i];
                if (entry & kIndexAllocated)
                    bitmapSet(pbitmapWords(),
                              og.map.physical(entry & kIndexBlockMask));
            }
            persistHeaderLine(hdr_->bitmap, kSlabBitmapBytes);
            // Seal the rebuilt bitmap in its own epoch: if it shared
            // the setFlag fence and recovery itself crashed there, the
            // flag clear could land while the bitmap lines were
            // dropped, leaving a trusted header over a wrong bitmap.
            if (flush_)
                dev_->fence();
        }
        hdr_->index_count = 0;
        setFlag(0);
    } else if (hdr_->flag == 3) {
        if (targetValid(hdr_->new_size_class, hdr_->new_stripes)) {
            SlabGeometry ng = SlabGeometry::compute(hdr_->new_size_class,
                                                    hdr_->new_stripes);
            hdr_->size_class = uint16_t(ng.size_class);
            hdr_->capacity = uint16_t(ng.capacity);
            hdr_->stripes = uint16_t(ng.map.stripes);
            // No current-geometry block can exist at flag 3; clear any
            // stale pre-morph bits whose zeroing never landed.
            std::memset(hdr_->bitmap, 0, kSlabBitmapBytes);
            persistHeaderLine(hdr_->bitmap, kSlabBitmapBytes);
            // Same epoch-separation as the flag-2 repair above.
            if (flush_)
                dev_->fence();
        }
        setFlag(0);
    }

    geo_ = SlabGeometry::compute(hdr_->size_class, hdr_->stripes);

    unsigned live = 0;
    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (bitmapTest(pbitmapWords(), geo_.map.physical(idx))) {
            vbits_.set(idx);
            ++live;
        }
    }
    live_.store(live, std::memory_order_relaxed);
    avail_.store(geo_.capacity - live, std::memory_order_relaxed);

    if (hdr_->index_count > 0)
        rebuildMorphState();
}

unsigned
VSlab::blockIndexOf(uint64_t off) const
{
    if (off < slab_off_ + kSlabHeaderSize)
        return geo_.capacity;
    uint64_t rel = off - slab_off_ - kSlabHeaderSize;
    if (rel % geo_.block_size != 0)
        return geo_.capacity;
    uint64_t idx = rel / geo_.block_size;
    return idx < geo_.capacity ? unsigned(idx) : geo_.capacity;
}

unsigned
VSlab::popBlock()
{
    // First-fit claim (start at word 0): the lock-free claim on a
    // shared bitfield, retry count discarded — callers hold the arena
    // lock but race claimFast reservations.
    uint64_t retries = 0;
    unsigned idx = vbits_.claim(geo_.capacity, 0, retries);
    if (idx >= geo_.capacity)
        return geo_.capacity;
    lent_.fetch_add(1, std::memory_order_relaxed);
    avail_.fetch_sub(1, std::memory_order_relaxed);
    return idx;
}

unsigned
VSlab::popBlockSpread()
{
    // One bitmap cache line covers 512 physical bit positions; with
    // stripes that is 512/stripes logical blocks per line-visit.
    unsigned line_blocks = (kCacheLine * 8) / geo_.map.stripes;
    if (line_blocks == 0)
        line_blocks = 1;
    unsigned nlines = (geo_.capacity + line_blocks - 1) / line_blocks;
    for (unsigned probe = 0; probe < nlines; ++probe) {
        unsigned line =
            spread_rotor_.fetch_add(1, std::memory_order_relaxed) %
            nlines;
        unsigned begin = line * line_blocks;
        unsigned end = begin + line_blocks;
        if (end > geo_.capacity)
            end = geo_.capacity;
        for (unsigned idx = begin; idx < end; ++idx) {
            if (!vbits_.test(idx) && vbits_.tryClaim(idx)) {
                lent_.fetch_add(1, std::memory_order_relaxed);
                avail_.fetch_sub(1, std::memory_order_relaxed);
                return idx;
            }
        }
    }
    return geo_.capacity;
}

unsigned
VSlab::claimFast(uint64_t &cas_retries)
{
    unsigned nwords = unsigned(bitmapWords(geo_.capacity));
    unsigned start =
        claim_rotor_.fetch_add(1, std::memory_order_relaxed) % nwords;
    unsigned idx = vbits_.claim(geo_.capacity, start, cas_retries);
    if (idx >= geo_.capacity)
        return geo_.capacity;
    // Lent before un-available: the (lent + live) sum an unfrozen
    // maybeRelease probe reads must never transiently miss this block.
    lent_.fetch_add(1, std::memory_order_relaxed);
    avail_.fetch_sub(1, std::memory_order_relaxed);
    return idx;
}

void
VSlab::unlendBlock(unsigned idx)
{
    NV_ASSERT(lentBlocks() > 0 && vbits_.test(idx));
    lent_.fetch_sub(1, std::memory_order_relaxed);
    avail_.fetch_add(1, std::memory_order_relaxed);
    // Released last: the moment the vbit clears, a concurrent claim
    // may hand the block out again.
    vbits_.release(idx);
}

void
VSlab::markAllocated(unsigned idx)
{
    NV_ASSERT(lentBlocks() > 0);
    // live up before lent down, so live + lent never transiently
    // drops below the block count the slab really pins; persist in
    // between so a lent_ == 0 observer (morph eligibility) sees the
    // durable bit.
    live_.fetch_add(1, std::memory_order_relaxed);
    persistBit(idx, true);
    lent_.fetch_sub(1, std::memory_order_release);
}

void
VSlab::claimBlock(unsigned idx)
{
    NV_ASSERT(!vbits_.test(idx));
    vbits_.set(idx);
    avail_.fetch_sub(1, std::memory_order_relaxed);
    live_.fetch_add(1, std::memory_order_relaxed);
    persistBit(idx, true);
}

void
VSlab::markFree(unsigned idx)
{
    NV_ASSERT(liveBlocks() > 0);
    // Durability first: once the vbit releases, the block is claimable
    // and its persistent bit may be set again — the clear must already
    // be on media (journal-first ordering has appended the WAL entry
    // before this call). Counters in between keep live + lent honest
    // for release probes.
    persistBit(idx, false);
    live_.fetch_sub(1, std::memory_order_relaxed);
    avail_.fetch_add(1, std::memory_order_relaxed);
    vbits_.release(idx);
}

void
VSlab::markFreeToTcache(unsigned idx)
{
    NV_ASSERT(liveBlocks() > 0);
    // The vbit stays set: the block moves to the freeing thread's own
    // tcache, lent.
    persistBit(idx, false);
    lent_.fetch_add(1, std::memory_order_relaxed);
    live_.fetch_sub(1, std::memory_order_release);
}

bool
VSlab::rebuildPersistentBitmap()
{
    // Whole-structure rewrite: freeze out in-flight fast ops first
    // (the caller holds the arena lock, making us the sole freezer).
    freeze();
    if (lentBlocks() != 0 || morphing()) {
        unfreeze();
        return false;
    }
    std::memset(hdr_->bitmap, 0, kSlabBitmapBytes);
    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (vbits_.test(idx))
            bitmapSet(pbitmapWords(), geo_.map.physical(idx));
    }
    persistHeaderLine(hdr_->bitmap, kSlabBitmapBytes);
    if (flush_)
        dev_->fence();
    unfreeze();
    return true;
}

bool
VSlab::repairHeader()
{
    freeze();
    if (morphing()) {
        unfreeze();
        return false;
    }
    // index_count is already 0 here: cnt_slab_ == 0 implies any morph
    // completed, and finishMorph cleared the table.
    hdr_->magic = kSlabMagic;
    hdr_->size_class = uint16_t(geo_.size_class);
    hdr_->flag = 0;
    hdr_->data_offset = kSlabHeaderSize;
    hdr_->capacity = uint16_t(geo_.capacity);
    hdr_->stripes = uint16_t(geo_.map.stripes);
    hdr_->old_size_class = 0;
    hdr_->old_data_offset_k = kSlabHeaderSize / kCacheLine;
    hdr_->index_count = 0;
    hdr_->old_capacity = 0;
    hdr_->old_stripes = 0;
    hdr_->new_size_class = 0;
    hdr_->new_stripes = 0;
    updateHeaderCrc();
    persistHeaderLine(hdr_, kCacheLine);
    if (flush_)
        dev_->fence();
    unfreeze();
    return true;
}

void
VSlab::persistBit(unsigned idx, bool set)
{
    // Atomic RMW on the shared bitmap word: concurrent fast-path
    // persists of neighboring blocks hit the same 64-bit word.
    unsigned phys = geo_.map.physical(idx);
    std::atomic_ref<uint64_t> word(pbitmapWords()[phys >> 6]);
    uint64_t mask = uint64_t{1} << (phys & 63);
    if (set)
        word.fetch_or(mask, std::memory_order_release);
    else
        word.fetch_and(~mask, std::memory_order_release);

    // NVAlloc-GC never flushes per-block metadata (paper §4.1): the
    // post-crash GC rebuilds it, trading recovery time for allocation
    // speed.
    if (flush_ && !gc_mode_) {
        dev_->flushLine(hdr_->bitmap + phys / 8, TimeKind::FlushMeta);
        dev_->fence();
    }
}

void
VSlab::persistHeaderLine(const void *addr, size_t len)
{
    if (flush_)
        dev_->persist(addr, len, TimeKind::FlushMeta);
}

void
VSlab::setFlag(uint16_t flag)
{
    // One flush commits the whole first line. The crc only actually
    // changes when the geometry quintuple changed (morph step 3);
    // recomputing it unconditionally keeps every transition uniform.
    hdr_->flag = flag;
    updateHeaderCrc();
    persistHeaderLine(hdr_, kCacheLine);
    if (flush_)
        dev_->fence();
}

bool
VSlab::headerLooksValid(PmDevice *dev, uint64_t slab_off, bool verify_crc)
{
    const auto *h = static_cast<const SlabHeader *>(dev->at(slab_off));
    if (dev->isPoisoned(h, kCacheLine))
        return false;
    if (h->magic != kSlabMagic)
        return false;
    if (h->flag > 3 || h->index_count > kIndexTableCap ||
        h->data_offset != kSlabHeaderSize)
        return false;

    // Three acceptable interpretations of the geometry words: as
    // stored, or — for a header torn inside morph step 3's epoch —
    // the staged pre-morph geometry (recovery rolls back from it at
    // flag 2) or the staged morph target (rolled forward at flag 3).
    bool stored_ok =
        geometryValid(h->size_class, h->capacity, h->stripes);
    bool old_ok = geometryValid(h->old_size_class, h->old_capacity,
                                h->old_stripes);
    bool new_ok = targetValid(h->new_size_class, h->new_stripes);

    if (verify_crc) {
        // The staged interpretations only apply while a morph is in
        // flight (flag 2/3): a completed morph leaves its stale
        // old_*/new_* staging behind, and accepting those at flag 0
        // would let a forged current geometry ride a stale staging
        // crc.
        bool ok = stored_ok && h->crc == slabHeaderCrc(*h);
        if (!ok && h->flag >= 2 && old_ok)
            ok = h->crc == slabGeometryCrc(h->old_size_class,
                                           h->old_capacity,
                                           h->old_stripes);
        if (!ok && h->flag >= 2 && new_ok) {
            SlabGeometry g = SlabGeometry::compute(h->new_size_class,
                                                   h->new_stripes);
            ok = h->crc == slabGeometryCrc(h->new_size_class,
                                           uint16_t(g.capacity),
                                           h->new_stripes);
        }
        if (!ok)
            return false;
    } else {
        // Structural sanity is the only line of defense when crc
        // verification is configured off: the stored geometry must be
        // self-consistent, or a mid-morph flag must point recovery at
        // a valid staged geometry to repair from.
        if (!stored_ok && !(h->flag == 2 && old_ok) &&
            !(h->flag == 3 && new_ok))
            return false;
    }

    if (h->index_count > 0 &&
        (h->old_size_class >= kNumSizeClasses ||
         h->old_capacity >
             (kSlabSize - kSlabHeaderSize) /
                 classToSize(h->old_size_class)))
        return false;
    return true;
}

bool
VSlab::morphEligible(double threshold) const
{
    return hdr_->flag == 0 && !morphing() && lentBlocks() == 0 &&
           liveBlocks() > 0 && liveBlocks() <= kIndexTableCap &&
           occupancy() <= threshold;
}

bool
VSlab::morphTo(unsigned new_cls, unsigned stripes)
{
    NV_ASSERT(new_cls != geo_.size_class);

    // Freeze before re-checking eligibility: between the caller's
    // morphEligible probe and here, a lock-free reservation may have
    // lent blocks out. Once frozen the counters are stable, so a
    // failed re-check is a clean refusal, not a torn morph.
    freeze();
    if (!morphEligible(1.0)) {
        unfreeze();
        return false;
    }

    // Step 1: stage the old geometry (paper Fig. 5) plus the morph
    // target, so recovery can repair a torn step 3 in either
    // direction without trusting the (possibly torn) live fields.
    SlabGeometry ng = SlabGeometry::compute(new_cls, stripes);
    hdr_->old_size_class = uint16_t(geo_.size_class);
    hdr_->old_data_offset_k = kSlabHeaderSize / kCacheLine;
    hdr_->old_capacity = uint16_t(geo_.capacity);
    hdr_->old_stripes = uint16_t(geo_.map.stripes);
    hdr_->new_size_class = uint16_t(ng.size_class);
    hdr_->new_stripes = uint16_t(ng.map.stripes);
    setFlag(1);

    // Step 2: record every live old block in the index table.
    unsigned n = 0;
    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (bitmapTest(pbitmapWords(), geo_.map.physical(idx)))
            hdr_->index_table[n++] = uint16_t(idx) | kIndexAllocated;
    }
    NV_ASSERT(n == liveBlocks() && n <= kIndexTableCap);
    hdr_->index_count = uint16_t(n);
    persistHeaderLine(hdr_->index_table, n * sizeof(uint16_t));
    // The flag-2 rollback treats the index table as authoritative, so
    // it must be durable in an epoch strictly before the flag advance:
    // were they fenced together, a crash at that fence could commit
    // flag 2 while dropping the table lines.
    if (flush_)
        dev_->fence();
    setFlag(2);

    // Step 3: install the new geometry; the old allocation info now
    // lives only in the index table.
    old_geo_ = geo_;
    geo_ = ng;
    hdr_->size_class = uint16_t(new_cls);
    hdr_->capacity = uint16_t(geo_.capacity);
    hdr_->stripes = uint16_t(geo_.map.stripes);
    std::memset(hdr_->bitmap, 0, kSlabBitmapBytes);
    persistHeaderLine(hdr_->bitmap, kSlabBitmapBytes);
    setFlag(3);

    // Commit and rebuild the volatile morph state.
    setFlag(0);
    rebuildMorphState();
    unfreeze();
    return true;
}

void
VSlab::rebuildMorphState()
{
    // Exclusive context: recovery (single-threaded) or under freeze.
    old_geo_ = SlabGeometry::compute(hdr_->old_size_class, hdr_->stripes);
    cnt_block_.assign(geo_.capacity, 0);
    vbits_.reset();

    // Current-geometry allocations (none right after a morph; present
    // when rebuilding a slab_in during recovery).
    unsigned live = 0;
    for (unsigned idx = 0; idx < geo_.capacity; ++idx) {
        if (bitmapTest(pbitmapWords(), geo_.map.physical(idx))) {
            vbits_.set(idx);
            ++live;
        }
    }
    live_.store(live, std::memory_order_relaxed);
    lent_.store(0, std::memory_order_relaxed);

    unsigned cnt_slab = 0;
    for (unsigned i = 0; i < hdr_->index_count; ++i) {
        uint16_t entry = hdr_->index_table[i];
        if (!(entry & kIndexAllocated))
            continue;
        ++cnt_slab;
        unsigned old_idx = entry & kIndexBlockMask;
        uint64_t start = uint64_t(old_idx) * old_geo_.block_size;
        uint64_t end = start + old_geo_.block_size;
        unsigned first = unsigned(start / geo_.block_size);
        unsigned last = unsigned((end - 1) / geo_.block_size);
        for (unsigned nb = first; nb <= last && nb < geo_.capacity; ++nb) {
            if (cnt_block_[nb]++ == 0)
                vbits_.set(nb);
        }
    }
    avail_.store(geo_.capacity - vbits_.popcount(geo_.capacity),
                 std::memory_order_relaxed);
    // Publish last: morphing() gates the lock-free free path, so the
    // overlap bookkeeping above must be visible before it flips.
    cnt_slab_.store(cnt_slab, std::memory_order_release);

    if (cnt_slab == 0 && hdr_->index_count > 0)
        finishMorph();
}

bool
VSlab::isOldBlock(uint64_t off, unsigned &old_idx) const
{
    if (!morphing())
        return false;
    uint64_t rel = off - slab_off_ - kSlabHeaderSize;

    // A handed-out current-geometry block always has its bit set, and
    // new blocks are never handed out while old blocks overlap them,
    // so an allocated current bit is authoritative.
    if (rel % geo_.block_size == 0) {
        unsigned idx = unsigned(rel / geo_.block_size);
        if (idx < geo_.capacity && isAllocated(idx))
            return false;
    }
    if (rel % old_geo_.block_size != 0)
        return false;
    unsigned candidate = unsigned(rel / old_geo_.block_size);
    for (unsigned i = 0; i < hdr_->index_count; ++i) {
        if (hdr_->index_table[i] ==
            (uint16_t(candidate) | kIndexAllocated)) {
            old_idx = candidate;
            return true;
        }
    }
    return false;
}

bool
VSlab::freeOldBlock(unsigned old_idx)
{
    NV_ASSERT(morphing());
    unsigned entry_pos = hdr_->index_count;
    for (unsigned i = 0; i < hdr_->index_count; ++i) {
        if (hdr_->index_table[i] == (uint16_t(old_idx) | kIndexAllocated)) {
            entry_pos = i;
            break;
        }
    }
    NV_ASSERT(entry_pos < hdr_->index_count);

    // Paper §5.2 block release: update the entry's state and flush it;
    // blocks_before bypass the tcache.
    hdr_->index_table[entry_pos] = uint16_t(old_idx);
    if (flush_) {
        dev_->flushLine(&hdr_->index_table[entry_pos],
                        TimeKind::FlushMeta);
        dev_->fence();
    }

    uint64_t start = uint64_t(old_idx) * old_geo_.block_size;
    uint64_t end = start + old_geo_.block_size;
    unsigned first = unsigned(start / geo_.block_size);
    unsigned last = unsigned((end - 1) / geo_.block_size);
    for (unsigned nb = first; nb <= last && nb < geo_.capacity; ++nb) {
        NV_ASSERT(cnt_block_[nb] > 0);
        if (--cnt_block_[nb] == 0) {
            // Availability before the vbit release, mirroring markFree:
            // the instant the bit clears a concurrent claim may take
            // the block.
            avail_.fetch_add(1, std::memory_order_relaxed);
            vbits_.release(nb);
        }
    }

    if (cnt_slab_.fetch_sub(1, std::memory_order_release) == 1) {
        finishMorph();
        return true;
    }
    return false;
}

void
VSlab::finishMorph()
{
    // The slab becomes a regular slab_after; the staging area is dead.
    hdr_->index_count = 0;
    updateHeaderCrc();
    persistHeaderLine(hdr_, kCacheLine);
    if (flush_)
        dev_->fence();
    cnt_slab_.store(0, std::memory_order_release);
    cnt_block_.clear();
    cnt_block_.shrink_to_fit();
}

} // namespace nvalloc
