/**
 * @file
 * Per-heap background maintenance service (DESIGN.md §8).
 *
 * The heap's housekeeping — bookkeeping-log fast/slow GC (§5.3),
 * extent decay, media-poison scrubbing, and tcache trimming — used to
 * run entirely inline on the allocating thread: slow GC fired from the
 * append path and the whole set fired from the exhaustion
 * reclaim-then-retry slow path, so fig17 charged every nanosecond of
 * GC to the request path. This service moves that work into bounded
 * *slices* that run off the hot path, jemalloc-background-thread
 * style.
 *
 * Three modes (NvAllocConfig::maintenance_mode):
 *  - Off:    nothing here runs; the mutator slow paths keep doing the
 *            work inline exactly as before.
 *  - Manual: slices run only when step() is called — by a test, the
 *            bench harness, or the ctl surface — on the calling
 *            thread's virtual clock, so runs are bit-reproducible.
 *            The exhaustion slow path still runs one forced slice
 *            synchronously (the deterministic analogue of a wake).
 *  - Thread: a real background thread runs slices, paced by a host
 *            timer and woken early by pressure: log occupancy
 *            crossing wake_fraction * gc_threshold (pollLogPressure
 *            on the large-object paths) and the exhaustion slow path
 *            (reclaimSync, which hands the caller back only after a
 *            forced slice completed).
 *
 * Pacing inputs are the PR 3 telemetry/degradation counters: log
 * occupancy vs. gc_threshold, the device's poisoned-line count plus
 * the persistent quarantine depth, and DegradedStats.failed_allocs
 * (a rise between slices triggers cooperative tcache trimming).
 *
 * Epoch-based deferral: slow GC relocates live log entries, so a
 * caller that holds a LogEntryRef across operations (tests, external
 * steppers) pins the epoch with pin()/unpin() (or PinGuard); a slice
 * that wants slow GC while pins are held defers it (stats.deferred)
 * and retries on a later slice. Internal mutators only touch refs
 * under the large allocator's lock, which every GC entry point also
 * takes, so they never need to pin.
 *
 * Shutdown ordering: NvAlloc::~NvAlloc, simulateCrash() and
 * dirtyRestart() all shut the service down *first*, so no slice can
 * persist into a device being rolled back or torn down; a failed open
 * never starts the thread at all.
 */

#ifndef NVALLOC_NVALLOC_MAINTENANCE_H
#define NVALLOC_NVALLOC_MAINTENANCE_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "nvalloc/config.h"

namespace nvalloc {

class BookkeepingLog;
class LargeAllocator;
class PmDevice;
class Telemetry;

/** Why the service was woken (TraceOp::MaintWake payload). */
enum class MaintWakeReason : uint8_t
{
    Timer = 0,       //!< Thread-mode poll interval elapsed
    LogPressure = 1, //!< occupancy crossed the wake level
    Reclaim = 2,     //!< exhaustion slow path (reclaimSync)
    Explicit = 3,    //!< ctl "maintenance.wake" / API call
};

/** Service counters, exported as the stats.maintenance.* ctl family.
 *  All relaxed atomics: written by whichever thread runs a slice,
 *  read lock-free by the ctl tree. */
struct MaintenanceStats
{
    std::atomic<uint64_t> slices{0};      //!< slices that ran
    std::atomic<uint64_t> wakes{0};       //!< explicit wake-ups
    std::atomic<uint64_t> log_fast_gc{0}; //!< fast-GC passes run
    std::atomic<uint64_t> log_slow_gc{0}; //!< slow GCs that compacted
    std::atomic<uint64_t> decay_ticks{0}; //!< decay passes run
    std::atomic<uint64_t> scrubbed_lines{0}; //!< poison lines healed
    std::atomic<uint64_t> trim_requests{0};  //!< tcache trims asked
    std::atomic<uint64_t> deferred{0};   //!< slow GCs blocked by pins
    std::atomic<uint64_t> virtual_ns{0}; //!< modeled time in slices
    /** Share of BookkeepingLog::Stats.gc_ns that accrued inside
     *  maintenance slices. stats.log.gc_ns minus this is what the
     *  allocating threads still paid inline (fig17 fg/bg split). */
    std::atomic<uint64_t> gc_virtual_ns{0};
    /** Stage-5 patrol scrub (stats.scrub.*): slices that ran a patrol
     *  batch. The item/finding/retry/pass counters live on the heap
     *  (NvAlloc::scrubStats) next to the cursor they describe. */
    std::atomic<uint64_t> patrol_slices{0};
};

class MaintenanceService
{
  public:
    /** Everything a slice touches, provided by the owning NvAlloc.
     *  Callbacks must stay valid until shutdown(). */
    struct Wiring
    {
        PmDevice *dev = nullptr;
        LargeAllocator *large = nullptr;
        BookkeepingLog *log = nullptr; //!< null in in-place/Base mode
        Telemetry *tel = nullptr;
        std::function<uint64_t()> failed_allocs;
        std::function<uint64_t()> quarantine_depth;
        std::function<void()> request_trim;
        /** Stage 5: run one bounded patrol-scrub batch (the heap's
         *  incremental metadata walk, auditor.h); returns the number
         *  of items examined. Unset or patrol_scrub off skips the
         *  stage. */
        std::function<unsigned()> patrol;
        /** Device ranges the scrub pass must never touch (superblock
         *  root, WAL rings, the log region). */
        std::vector<std::pair<uint64_t, uint64_t>> protected_ranges;
    };

    MaintenanceService() = default;
    ~MaintenanceService();

    MaintenanceService(const MaintenanceService &) = delete;
    MaintenanceService &operator=(const MaintenanceService &) = delete;

    /** Bind to a heap. Copies the maintenance knobs out of `cfg`. */
    void init(Wiring wiring, const NvAllocConfig &cfg);

    /** Spawn the background thread (Thread mode only; no-op in Off
     *  and Manual modes, and after shutdown()). */
    void start();

    /** Stop and join the background thread; releases any reclaimSync
     *  waiters (they finish their forced slice inline). Idempotent,
     *  and safe to call in any mode. */
    void shutdown();

    /**
     * Run one bounded maintenance slice on the calling thread (the
     * Manual-mode driver; also serves ctl "maintenance.step").
     * Returns true if the slice did any work. Respects pause().
     */
    bool step() { return runSlice(/*forced=*/false); }

    /**
     * Suspend slices. Synchronous: an in-flight slice completes
     * before pause() returns, so the heap is maintenance-quiescent
     * afterwards (the auditor relies on this). Counted — nested
     * pause/resume pairs compose.
     */
    void pause();
    void resume();
    bool
    paused() const
    {
        return pause_depth_.load(std::memory_order_relaxed) > 0;
    }

    /** Nudge the Thread-mode worker to run a slice now (asynchronous;
     *  counted in stats().wakes in every mode). */
    void wake(MaintWakeReason reason);

    /**
     * The exhaustion slow path's entry point. Manual mode (or Thread
     * mode with no live worker): runs one forced slice inline on the
     * calling thread. Thread mode: wakes the worker and blocks until
     * a forced slice completed, so the caller's retry observes the
     * reclaimed space. Forced slices ignore pause() — the caller is
     * out of memory *now*.
     */
    void reclaimSync();

    /**
     * Cheap mutator-side pressure probe: in Thread mode, once log
     * occupancy reaches the wake level the probing thread performs a
     * *synchronous handoff* — it wakes the worker and blocks (wall
     * clock) until one slice completed. Blocking costs the mutator
     * zero *virtual* time, so the GC's modeled nanoseconds land on the
     * worker's clock; without the handoff a starved worker (e.g. a
     * single-core host) loses the race and the append path's inline
     * slow GC charges the mutator anyway. Edge triggered: one handoff
     * per crossing, re-armed when the slice completes.
     */
    void pollLogPressure();

    // ---- epoch-based deferral ---------------------------------------

    /** While any pin is held, slices defer slow GC (the only stage
     *  that relocates live log entries). */
    void pin() { pins_.fetch_add(1, std::memory_order_acq_rel); }
    void unpin() { pins_.fetch_sub(1, std::memory_order_acq_rel); }

    class PinGuard
    {
      public:
        explicit PinGuard(MaintenanceService &s) : s_(s) { s_.pin(); }
        ~PinGuard() { s_.unpin(); }
        PinGuard(const PinGuard &) = delete;
        PinGuard &operator=(const PinGuard &) = delete;

      private:
        MaintenanceService &s_;
    };

    // ---- introspection ----------------------------------------------

    MaintenanceMode mode() const { return mode_; }
    bool active() const { return wired_ && mode_ != MaintenanceMode::Off; }
    bool
    threadRunning() const
    {
        std::lock_guard<std::mutex> l(mu_);
        return running_;
    }
    const MaintenanceStats &stats() const { return stats_; }

  private:
    bool runSlice(bool forced);
    void threadMain();
    double logOccupancy() const;
    double wakeLevel() const;
    bool logHasGarbage() const;

    Wiring w_;
    NvAllocConfig cfg_;
    MaintenanceMode mode_ = MaintenanceMode::Off;
    bool wired_ = false;

    /** Mutated only under slice_mu_ (pause/resume), so quiescence
     *  ordering flows through the mutex; atomic only so paused() can
     *  be probed lock-free. */
    std::atomic<int> pause_depth_{0};
    std::atomic<uint64_t> pins_{0};
    std::atomic<bool> wake_armed_{false}; //!< pressure-wake edge latch

    // Thread-mode handshake state, guarded by mu_. thread_ itself is
    // only assigned/moved under mu_ and joined by the one shutdown()
    // call that claimed it, so joinable()/join() never race; liveness
    // checks go through running_ instead of thread_.joinable().
    mutable std::mutex mu_;
    std::condition_variable cv_;      //!< work signal
    std::condition_variable done_cv_; //!< cycle-completion signal
    bool stop_ = false;
    bool running_ = false; //!< worker spawned and not yet shut down
    bool force_pending_ = false;
    uint64_t wake_pending_ = 0;
    uint64_t forced_done_ = 0;
    uint64_t slices_done_ = 0; //!< all worker slices, forced or not
    std::thread thread_;

    /** Serializes slices against each other and against pause(); also
     *  guards the slice-local pacing state below. */
    std::mutex slice_mu_;
    uint64_t last_failed_allocs_ = 0;

    MaintenanceStats stats_;
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_MAINTENANCE_H
