#include "nvalloc/bookkeeping_log.h"

#include <cstring>

#include "common/bitmap_ops.h"
#include "common/logging.h"

namespace nvalloc {

namespace {

constexpr size_t kChunkStride = sizeof(LogChunk); // 1088 B
constexpr size_t kHeaderArea = 64;

} // namespace

BookkeepingLog::~BookkeepingLog()
{
    freeAllVChunks();
}

void
BookkeepingLog::freeAllVChunks()
{
    while (VChunk *vc = active_.first()) {
        active_.erase(vc);
        delete vc;
    }
    while (free_list_) {
        VChunk *vc = free_list_;
        free_list_ = vc->next_free;
        delete vc;
    }
    tail_ = nullptr;
    active_count_ = 0;
}

uint64_t
BookkeepingLog::chunkOffset(size_t index) const
{
    return region_off_ + kHeaderArea + index * kChunkStride;
}

void
BookkeepingLog::attach(PmDevice *dev, uint64_t region_off,
                       size_t region_bytes, bool interleaved,
                       bool flush_enabled, double gc_threshold,
                       bool create)
{
    dev_ = dev;
    region_off_ = region_off;
    region_bytes_ = region_bytes;
    flush_ = flush_enabled;
    gc_threshold_ = gc_threshold;
    header_ = static_cast<LogHeader *>(dev->at(region_off));
    max_chunks_ = (region_bytes - kHeaderArea) / kChunkStride;
    NV_ASSERT(max_chunks_ >= 4);

    unsigned stripes = interleaved ? kLogChunkStripes : 1;

    if (create) {
        header_->magic = kLogMagic;
        header_->head[0] = 0;
        header_->head[1] = 0;
        header_->alt = 0;
        header_->num_chunks = 0;
        // The stripe count is not stored here: it is part of the
        // allocator config the superblock persists, so attach() is
        // always called with the same interleaving the log was
        // written with.
        persistLine(header_, sizeof(LogHeader));
        if (flush_)
            dev_->fence();
    } else {
        NV_ASSERT(header_->magic == kLogMagic);
    }

    map_ = InterleaveMap::build(kLogEntriesPerChunk, 64, stripes);
    NV_ASSERT(map_.physicalSlots() <= kLogEntriesPerChunk);

    freeAllVChunks();
    carved_chunks_ = header_->num_chunks;
    live_entries_ = 0;
    next_id_ = 1;
}

void
BookkeepingLog::persistLine(const void *addr, size_t len)
{
    if (flush_)
        dev_->persist(addr, len, TimeKind::FlushLog);
}

BookkeepingLog::VChunk *
BookkeepingLog::takeFreeChunk()
{
    if (!free_list_) {
        // Carve a never-used chunk from the region file.
        if (carved_chunks_ >= max_chunks_)
            return nullptr;
        VChunk *vc = new VChunk;
        vc->chunk_off = chunkOffset(carved_chunks_);
        ++carved_chunks_;
        header_->num_chunks = uint32_t(carved_chunks_);
        persistLine(header_, sizeof(LogHeader));
        return vc;
    }
    VChunk *vc = free_list_;
    free_list_ = vc->next_free;
    vc->next_free = nullptr;
    return vc;
}

BookkeepingLog::VChunk *
BookkeepingLog::activateChunk(VChunk *list_tail)
{
    VChunk *vc = takeFreeChunk();
    if (!vc)
        return nullptr;

    vc->id = next_id_++;
    vc->bitmap[0] = vc->bitmap[1] = 0;
    vc->live = 0;
    vc->next_slot = 0;
    std::memset(vc->owners, 0, sizeof(vc->owners));

    LogChunk *pc = chunkAt(*vc);
    std::memset(pc->entries, 0, kLogChunkDataBytes);
    pc->id = vc->id;
    pc->active = 1;
    pc->next = 0;
    // One sequential burst: the zeroed entry area plus the header.
    persistLine(pc, sizeof(LogChunk));

    if (list_tail) {
        LogChunk *prev = chunkAt(*list_tail);
        prev->next = vc->chunk_off;
        persistLine(&prev->next, sizeof(prev->next));
    } else {
        header_->head[header_->alt] = vc->chunk_off;
        persistLine(header_, sizeof(LogHeader));
    }
    if (flush_)
        dev_->fence();

    active_.insert(vc, vc->id);
    ++active_count_;
    return vc;
}

void
BookkeepingLog::writeEntry(VChunk &vc, unsigned slot, uint64_t packed)
{
    LogChunk *pc = chunkAt(vc);
    unsigned phys = map_.physical(slot);
    pc->entries[phys] = packed;
    persistLine(&pc->entries[phys], sizeof(uint64_t));
    if (flush_)
        dev_->fence();
}

void
BookkeepingLog::ensureTail()
{
    if (tail_ && tail_->next_slot < kLogEntriesPerChunk)
        return;
    if (!free_list_)
        fastGc();

    // Slow GC is worth it only if it can actually shrink the chunk
    // count; a log genuinely full of live entries must keep carving.
    double used_after = double(active_count_ + 1) / double(max_chunks_);
    double live_frac = double(live_entries_) /
                       double(max_chunks_ * kLogEntriesPerChunk);
    if (used_after > gc_threshold_ && live_frac < gc_threshold_ * 0.75) {
        slowGc();
        if (tail_ && tail_->next_slot < kLogEntriesPerChunk)
            return;
    }

    VChunk *vc = activateChunk(tail_);
    if (!vc) {
        slowGc();
        if (tail_ && tail_->next_slot < kLogEntriesPerChunk)
            return;
        vc = activateChunk(tail_);
        if (!vc)
            NV_FATAL("bookkeeping log region exhausted");
    }
    tail_ = vc;
}

LogEntryRef
BookkeepingLog::append(LogType type, uint64_t ext_off, uint64_t size,
                       void *owner)
{
    ensureTail();

    VChunk &vc = *tail_;
    unsigned slot = vc.next_slot++;
    uint64_t packed = logEntryPack(type, ext_off >> 12, size);
    writeEntry(vc, slot, packed);
    bitmapSet(vc.bitmap, slot);
    ++vc.live;
    vc.owners[slot] = owner;
    if (type != kLogTombstone)
        ++live_entries_;
    ++stats_.appends;
    return LogEntryRef{vc.id, slot};
}

void
BookkeepingLog::tombstone(LogEntryRef target)
{
    NV_ASSERT(target.valid());
    VChunk *vc = active_.find(target.chunk_id);
    NV_ASSERT(vc && bitmapTest(vc->bitmap, target.slot));

    // Invalidate the target in its vchunk (volatile), then journal the
    // deletion persistently for post-crash replay.
    bitmapClear(vc->bitmap, target.slot);
    --vc->live;
    vc->owners[target.slot] = nullptr;
    --live_entries_;
    ++stats_.tombstones;

    append(kLogTombstone, uint64_t(target.chunk_id) << 12, target.slot,
           nullptr);
}

void
BookkeepingLog::setOwner(LogEntryRef ref, void *owner)
{
    VChunk *vc = active_.find(ref.chunk_id);
    NV_ASSERT(vc != nullptr);
    vc->owners[ref.slot] = owner;
}

void
BookkeepingLog::fastGc()
{
    ++stats_.fast_gcs;

    // Scan vchunks; empty ones leave the active list. No PM reads —
    // only the deactivation flag and the predecessor's next pointer
    // are written (paper: "its overhead is trivial").
    VChunk *prev = nullptr;
    VChunk *vc = active_.first();
    while (vc) {
        VChunk *next = active_.next(vc);
        if (vc->live == 0 && vc != tail_ && vc->next_slot > 0) {
            releaseChunk(vc, prev);
        } else {
            prev = vc;
        }
        vc = next;
    }
}

void
BookkeepingLog::releaseChunk(VChunk *vc, VChunk *prev)
{
    LogChunk *pc = chunkAt(*vc);
    pc->active = 0;
    persistLine(&pc->active, sizeof(pc->active));

    if (prev) {
        LogChunk *pp = chunkAt(*prev);
        pp->next = pc->next;
        persistLine(&pp->next, sizeof(pp->next));
    } else {
        header_->head[header_->alt] = pc->next;
        persistLine(header_, sizeof(LogHeader));
    }
    if (flush_)
        dev_->fence();

    active_.erase(vc);
    --active_count_;
    vc->next_free = free_list_;
    free_list_ = vc;
}

void
BookkeepingLog::slowGc()
{
    ++stats_.slow_gcs;

    // Collect the surviving entries (normal/slab with a set bit) in
    // id/slot order together with their owners.
    struct Live
    {
        uint64_t packed;
        void *owner;
    };
    std::vector<Live> survivors;
    survivors.reserve(live_entries_);
    std::vector<VChunk *> old_chunks;
    for (VChunk *vc = active_.first(); vc; vc = active_.next(vc)) {
        old_chunks.push_back(vc);
        LogChunk *pc = chunkAt(*vc);
        for (unsigned slot = 0; slot < vc->next_slot; ++slot) {
            if (!bitmapTest(vc->bitmap, slot))
                continue;
            uint64_t packed = pc->entries[map_.physical(slot)];
            if (logEntryType(packed) == kLogTombstone)
                continue; // dropped together with its target
            survivors.push_back({packed, vc->owners[slot]});
        }
    }

    // Build list_new under the alternate head.
    uint32_t old_alt = header_->alt;
    header_->alt = 1 - old_alt;
    VChunk *new_tail = nullptr;
    size_t copied = 0;
    live_entries_ = 0;
    for (const Live &e : survivors) {
        if (!new_tail || new_tail->next_slot == kLogEntriesPerChunk) {
            VChunk *vc = activateChunk(new_tail);
            if (!vc) {
                // Roll back the alt switch; caller will fail loudly.
                header_->alt = old_alt;
                NV_FATAL("log region too small for slow GC");
            }
            new_tail = vc;
        }
        unsigned slot = new_tail->next_slot++;
        writeEntry(*new_tail, slot, e.packed);
        bitmapSet(new_tail->bitmap, slot);
        ++new_tail->live;
        new_tail->owners[slot] = e.owner;
        ++live_entries_;
        ++copied;
        if (e.owner && relocate_)
            relocate_(e.owner, LogEntryRef{new_tail->id, slot});
    }
    stats_.entries_copied += copied;

    // Publish: one persistent bit flip moves recovery to list_new.
    persistLine(header_, sizeof(LogHeader));
    if (flush_)
        dev_->fence();

    // Recycle list_old.
    for (VChunk *vc : old_chunks) {
        LogChunk *pc = chunkAt(*vc);
        pc->active = 0;
        persistLine(&pc->active, sizeof(pc->active));
        active_.erase(vc);
        --active_count_;
        vc->next_free = free_list_;
        free_list_ = vc;
    }
    if (flush_)
        dev_->fence();
    tail_ = new_tail;
}

void
BookkeepingLog::replay(const std::function<void(LogType, uint64_t,
                                                uint64_t, LogEntryRef)> &fn)
{
    NV_ASSERT(active_.empty());

    // Pass 1: adopt the published chain, rebuild bitmaps, apply
    // tombstones.
    uint64_t off = header_->head[header_->alt];
    uint32_t max_id = 0;
    std::vector<VChunk *> chain;
    while (off) {
        // Reading one chunk (17 lines) is a short sequential burst.
        VClock::advance(300, TimeKind::PmRead);
        LogChunk *pc = static_cast<LogChunk *>(dev_->at(off));
        VChunk *vc = new VChunk;
        vc->chunk_off = off;
        vc->id = pc->id;
        active_.insert(vc, vc->id);
        ++active_count_;
        chain.push_back(vc);
        if (vc->id > max_id)
            max_id = vc->id;

        for (unsigned slot = 0; slot < kLogEntriesPerChunk; ++slot) {
            uint64_t packed = pc->entries[map_.physical(slot)];
            if (packed == 0)
                break; // appends are dense in logical order
            vc->next_slot = slot + 1;
            LogType type = logEntryType(packed);
            if (type == kLogTombstone) {
                uint32_t tgt_chunk = uint32_t(logEntryAddr(packed));
                uint32_t tgt_slot = uint32_t(logEntrySize(packed));
                VChunk *tgt = active_.find(tgt_chunk);
                // The target chunk may have been freed by fast GC
                // after the tombstone was written; then nothing to do.
                if (tgt && bitmapTest(tgt->bitmap, tgt_slot)) {
                    bitmapClear(tgt->bitmap, tgt_slot);
                    --tgt->live;
                }
                bitmapSet(vc->bitmap, slot);
                ++vc->live;
            } else {
                bitmapSet(vc->bitmap, slot);
                ++vc->live;
            }
        }
        off = pc->next;
    }
    next_id_ = max_id + 1;
    tail_ = chain.empty() ? nullptr : chain.back();

    // Unreachable carved chunks (e.g. an unpublished list_new from a
    // crashed slow GC) go back to the free pool.
    for (size_t i = 0; i < carved_chunks_; ++i) {
        uint64_t coff = chunkOffset(i);
        bool reachable = false;
        for (VChunk *vc : chain) {
            if (vc->chunk_off == coff) {
                reachable = true;
                break;
            }
        }
        if (!reachable) {
            VChunk *vc = new VChunk;
            vc->chunk_off = coff;
            vc->next_free = free_list_;
            free_list_ = vc;
        }
    }

    // Pass 2: surface the live payload entries in order.
    live_entries_ = 0;
    for (VChunk *vc : chain) {
        LogChunk *pc = chunkAt(*vc);
        for (unsigned slot = 0; slot < vc->next_slot; ++slot) {
            if (!bitmapTest(vc->bitmap, slot))
                continue;
            uint64_t packed = pc->entries[map_.physical(slot)];
            LogType type = logEntryType(packed);
            if (type == kLogTombstone)
                continue;
            ++live_entries_;
            fn(type, logEntryAddr(packed) << 12, logEntrySize(packed),
               LogEntryRef{vc->id, slot});
        }
    }
}

} // namespace nvalloc
