#include "nvalloc/bookkeeping_log.h"

#include <cstring>

#include "common/bitmap_ops.h"
#include "common/logging.h"

namespace nvalloc {

namespace {

constexpr size_t kChunkStride = sizeof(LogChunk); // 1088 B
constexpr size_t kHeaderArea = 64;

} // namespace

BookkeepingLog::~BookkeepingLog()
{
    freeAllVChunks();
}

void
BookkeepingLog::freeAllVChunks()
{
    while (VChunk *vc = active_.first()) {
        active_.erase(vc);
        delete vc;
    }
    while (free_list_) {
        VChunk *vc = free_list_;
        free_list_ = vc->next_free;
        delete vc;
    }
    tail_ = nullptr;
    active_count_ = 0;
}

uint64_t
BookkeepingLog::chunkOffset(size_t index) const
{
    return region_off_ + kHeaderArea + index * kChunkStride;
}

bool
BookkeepingLog::attach(PmDevice *dev, uint64_t region_off,
                       size_t region_bytes, bool interleaved,
                       bool flush_enabled, double gc_threshold,
                       bool create, bool verify)
{
    dev_ = dev;
    region_off_ = region_off;
    region_bytes_ = region_bytes;
    flush_ = flush_enabled;
    verify_ = verify;
    gc_threshold_ = gc_threshold;
    header_ = static_cast<LogHeader *>(dev->at(region_off));
    max_chunks_ = (region_bytes - kHeaderArea) / kChunkStride;
    NV_ASSERT(max_chunks_ >= 4);

    unsigned stripes = interleaved ? kLogChunkStripes : 1;

    if (create) {
        header_->magic = kLogMagic;
        header_->head[0] = 0;
        header_->head[1] = 0;
        header_->alt = 0;
        header_->num_chunks = 0;
        // The stripe count is not stored here: it is part of the
        // allocator config the superblock persists, so attach() is
        // always called with the same interleaving the log was
        // written with.
        persistHeader();
        if (flush_)
            dev_->fence();
    } else {
        // The header is the log's single root: if it cannot be
        // trusted no chunk can be found, so a corrupt one means the
        // heap is unopenable rather than quarantinable. alt is outside
        // the crc (see layout.h) and gets a structural check instead;
        // head[] is bounds-checked by replay before being followed.
        if (header_->magic != kLogMagic)
            return false;
        if (verify_ && (dev_->isPoisoned(header_, sizeof(LogHeader)) ||
                        header_->crc != logHeaderCrc(*header_) ||
                        header_->alt > 1 ||
                        header_->num_chunks > max_chunks_))
            return false;
    }

    map_ = InterleaveMap::build(kLogEntriesPerChunk, 64, stripes);
    NV_ASSERT(map_.physicalSlots() <= kLogEntriesPerChunk);

    freeAllVChunks();
    carved_chunks_ = header_->num_chunks;
    live_entries_ = 0;
    next_id_ = 1;
    return true;
}

void
BookkeepingLog::persistLine(const void *addr, size_t len)
{
    if (flush_)
        dev_->persist(addr, len, TimeKind::FlushLog);
}

void
BookkeepingLog::persistHeader()
{
    header_->crc = logHeaderCrc(*header_);
    persistLine(header_, sizeof(LogHeader));
}

void
BookkeepingLog::persistChunkHeader(LogChunk *pc)
{
    // id/active/crc all live in the chunk's first cache line, so this
    // stays a single flush.
    pc->crc = logChunkCrc(*pc);
    persistLine(pc, offsetof(LogChunk, pad));
}

BookkeepingLog::VChunk *
BookkeepingLog::takeFreeChunk()
{
    if (!free_list_) {
        // Carve a never-used chunk from the region file.
        if (carved_chunks_ >= max_chunks_)
            return nullptr;
        VChunk *vc = new VChunk;
        vc->chunk_off = chunkOffset(carved_chunks_);
        ++carved_chunks_;
        header_->num_chunks = uint32_t(carved_chunks_);
        persistHeader();
        return vc;
    }
    VChunk *vc = free_list_;
    free_list_ = vc->next_free;
    vc->next_free = nullptr;
    return vc;
}

BookkeepingLog::VChunk *
BookkeepingLog::activateChunk(VChunk *list_tail, uint32_t list)
{
    VChunk *vc = takeFreeChunk();
    if (!vc)
        return nullptr;

    vc->id = next_id_++;
    vc->bitmap[0] = vc->bitmap[1] = 0;
    vc->live = 0;
    vc->next_slot = 0;
    std::memset(vc->owners, 0, sizeof(vc->owners));

    LogChunk *pc = chunkAt(*vc);
    std::memset(pc->entries, 0, kLogChunkDataBytes);
    pc->id = vc->id;
    pc->active = 1;
    pc->next = 0;
    pc->crc = logChunkCrc(*pc);
    // One sequential burst: the zeroed entry area plus the header.
    persistLine(pc, sizeof(LogChunk));

    if (list_tail) {
        // next is outside the chunk crc: one atomic word, and a torn
        // old value just means this chunk (which nothing depends on
        // until the fence below retires) stays unlinked.
        LogChunk *prev = chunkAt(*list_tail);
        prev->next = vc->chunk_off;
        persistLine(&prev->next, sizeof(uint64_t));
    } else {
        // One 8-byte word; the crc does not cover head[] (layout.h),
        // so a torn persist leaves either the old or the new link —
        // and the fence below retires it before any entry in this
        // chunk can commit, so the old link implies nothing depended
        // on the chunk yet.
        header_->head[list] = vc->chunk_off;
        persistLine(&header_->head[list], sizeof(uint64_t));
    }
    if (flush_)
        dev_->fence();

    active_.insert(vc, vc->id);
    ++active_count_;
    return vc;
}

void
BookkeepingLog::writeEntry(VChunk &vc, unsigned slot, uint64_t packed)
{
    LogChunk *pc = chunkAt(vc);
    unsigned phys = map_.physical(slot);
    pc->entries[phys] = packed;
    persistLine(&pc->entries[phys], sizeof(uint64_t));
    if (flush_)
        dev_->fence();
}

bool
BookkeepingLog::ensureTail()
{
    if (tail_ && tail_->next_slot < kLogEntriesPerChunk)
        return true;
    if (!free_list_)
        fastGc();

    // Slow GC is worth it only if it can actually shrink the chunk
    // count; a log genuinely full of live entries must keep carving.
    double used_after = double(active_count_ + 1) / double(max_chunks_);
    double live_frac = double(live_entries_) /
                       double(max_chunks_ * kLogEntriesPerChunk);
    if (used_after > gc_threshold_ && live_frac < gc_threshold_ * 0.75) {
        if (slowGc() && tail_ && tail_->next_slot < kLogEntriesPerChunk)
            return true;
    }

    VChunk *vc = activateChunk(tail_, header_->alt);
    if (!vc) {
        if (slowGc() && tail_ && tail_->next_slot < kLogEntriesPerChunk)
            return true;
        vc = activateChunk(tail_, header_->alt);
        if (!vc)
            return false; // log region exhausted; caller degrades
    }
    tail_ = vc;
    return true;
}

LogEntryRef
BookkeepingLog::append(LogType type, uint64_t ext_off, uint64_t size,
                       void *owner)
{
    if (!ensureTail())
        return LogEntryRef{};

    VChunk &vc = *tail_;
    unsigned slot = vc.next_slot++;
    uint64_t packed = logEntryPack(type, ext_off >> 12, size);
    writeEntry(vc, slot, packed);
    bitmapSet(vc.bitmap, slot);
    ++vc.live;
    vc.owners[slot] = owner;
    if (type != kLogTombstone)
        ++live_entries_;
    ++stats_.appends;
    if (tel_)
        tel_->add(StatCounter::LogAppend);
    return LogEntryRef{vc.id, slot};
}

void
BookkeepingLog::tombstone(LogEntryRef target)
{
    NV_ASSERT(target.valid());
    VChunk *vc = active_.find(target.chunk_id);
    NV_ASSERT(vc && bitmapTest(vc->bitmap, target.slot));

    // Invalidate the target in its vchunk (volatile), then journal the
    // deletion persistently for post-crash replay.
    bitmapClear(vc->bitmap, target.slot);
    --vc->live;
    vc->owners[target.slot] = nullptr;
    --live_entries_;
    ++stats_.tombstones;
    if (tel_)
        tel_->add(StatCounter::LogTombstone);

    // A failed tombstone append (log region completely full) only
    // means the deletion is not journaled: after a crash the extent
    // resurrects as allocated — a bounded leak, never corruption — so
    // the free itself still proceeds.
    if (!append(kLogTombstone, uint64_t(target.chunk_id) << 12,
                target.slot, nullptr)
             .valid())
        NV_WARN("bookkeeping log full; free not journaled (leak on crash)");
}

void
BookkeepingLog::setOwner(LogEntryRef ref, void *owner)
{
    VChunk *vc = active_.find(ref.chunk_id);
    NV_ASSERT(vc != nullptr);
    vc->owners[ref.slot] = owner;
}

void
BookkeepingLog::fastGc()
{
    const uint64_t t0 = VClock::now();
    stats_.fast_gcs.fetch_add(1, std::memory_order_relaxed);
    if (tel_) {
        tel_->add(StatCounter::LogFastGc);
        tel_->event(TraceOp::LogGc, 0);
    }

    // Scan vchunks; empty ones leave the active list. No PM reads —
    // only the deactivation flag and the predecessor's next pointer
    // are written (paper: "its overhead is trivial").
    VChunk *prev = nullptr;
    VChunk *vc = active_.first();
    while (vc) {
        VChunk *next = active_.next(vc);
        if (vc->live == 0 && vc != tail_ && vc->next_slot > 0) {
            releaseChunk(vc, prev);
        } else {
            prev = vc;
        }
        vc = next;
    }
    stats_.gc_ns.fetch_add(VClock::now() - t0,
                           std::memory_order_relaxed);
}

void
BookkeepingLog::releaseChunk(VChunk *vc, VChunk *prev)
{
    LogChunk *pc = chunkAt(*vc);

    // Unlink first, in its own fenced epoch: next/head live outside
    // the crcs (layout.h), so the unlink is one atomic word. Only then
    // deactivate the now-unreachable chunk — deactivation rewrites its
    // crc across two words, and a torn persist of a chunk still in the
    // chain would reject it at replay and truncate the chain behind
    // it, dropping committed entries.
    if (prev) {
        LogChunk *pp = chunkAt(*prev);
        pp->next = pc->next;
        persistLine(&pp->next, sizeof(uint64_t));
    } else {
        header_->head[header_->alt] = pc->next;
        persistLine(&header_->head[header_->alt], sizeof(uint64_t));
    }
    if (flush_)
        dev_->fence();

    pc->active = 0;
    persistChunkHeader(pc);
    if (flush_)
        dev_->fence();

    active_.erase(vc);
    --active_count_;
    vc->next_free = free_list_;
    free_list_ = vc;
}

bool
BookkeepingLog::slowGc()
{
    // The copy pass relocates owner refs as it goes and cannot be
    // unwound, so prove the new list fits before touching anything:
    // every surviving entry needs a slot, and chunks come from the
    // free list or from carving.
    size_t needed = (live_entries_ + kLogEntriesPerChunk - 1) /
                    kLogEntriesPerChunk;
    size_t avail = max_chunks_ - carved_chunks_;
    for (VChunk *vc = free_list_; vc; vc = vc->next_free)
        ++avail;
    if (needed > avail)
        return false;

    const uint64_t t0 = VClock::now();
    stats_.slow_gcs.fetch_add(1, std::memory_order_relaxed);
    if (tel_) {
        tel_->add(StatCounter::LogSlowGc);
        tel_->event(TraceOp::LogGc, 1);
    }

    // Collect the surviving entries (normal/slab with a set bit) in
    // id/slot order together with their owners.
    struct Live
    {
        uint64_t packed;
        void *owner;
    };
    std::vector<Live> survivors;
    survivors.reserve(live_entries_);
    std::vector<VChunk *> old_chunks;
    for (VChunk *vc = active_.first(); vc; vc = active_.next(vc)) {
        old_chunks.push_back(vc);
        LogChunk *pc = chunkAt(*vc);
        for (unsigned slot = 0; slot < vc->next_slot; ++slot) {
            if (!bitmapTest(vc->bitmap, slot))
                continue;
            uint64_t packed = pc->entries[map_.physical(slot)];
            if (logEntryType(packed) == kLogTombstone)
                continue; // dropped together with its target
            survivors.push_back({packed, vc->owners[slot]});
        }
    }

    // Build list_new under the alternate head. alt itself is not
    // touched until the chain is complete: every chunk activation
    // below persists header words, and flipping alt in DRAM first
    // would let those persists publish a half-built chain — a crash
    // mid-copy would then recover from it and silently drop every
    // entry not yet copied.
    uint32_t new_alt = 1 - header_->alt;
    VChunk *new_tail = nullptr;
    size_t copied = 0;
    live_entries_ = 0;
    for (const Live &e : survivors) {
        if (!new_tail || new_tail->next_slot == kLogEntriesPerChunk) {
            VChunk *vc = activateChunk(new_tail, new_alt);
            NV_ASSERT(vc != nullptr); // guaranteed by the precheck
            new_tail = vc;
        }
        unsigned slot = new_tail->next_slot++;
        writeEntry(*new_tail, slot, e.packed);
        bitmapSet(new_tail->bitmap, slot);
        ++new_tail->live;
        new_tail->owners[slot] = e.owner;
        ++live_entries_;
        ++copied;
        if (e.owner && relocate_)
            relocate_(e.owner, LogEntryRef{new_tail->id, slot});
    }
    stats_.entries_copied.fetch_add(copied, std::memory_order_relaxed);

    // Publish: one persistent word flip moves recovery to list_new.
    // All of list_new is durable (each activation and entry write was
    // fenced), and alt lives outside the header crc in its own 8-byte
    // word, so this update is atomic under word tearing: recovery sees
    // either the complete old list or the complete new one.
    header_->alt = new_alt;
    persistLine(&header_->alt, sizeof(uint32_t));
    if (flush_)
        dev_->fence();

    // Recycle list_old.
    for (VChunk *vc : old_chunks) {
        LogChunk *pc = chunkAt(*vc);
        pc->active = 0;
        persistChunkHeader(pc);
        active_.erase(vc);
        --active_count_;
        vc->next_free = free_list_;
        free_list_ = vc;
    }
    if (flush_)
        dev_->fence();
    tail_ = new_tail;
    stats_.gc_ns.fetch_add(VClock::now() - t0,
                           std::memory_order_relaxed);
    return true;
}

void
BookkeepingLog::replay(const std::function<void(LogType, uint64_t,
                                                uint64_t, LogEntryRef)> &fn)
{
    NV_ASSERT(active_.empty());

    // Pass 1: adopt the published chain, rebuild bitmaps, apply
    // tombstones.
    // head[] lives outside the header crc (layout.h), so validate the
    // chain offsets structurally before dereferencing them: a torn or
    // corrupted link must end the chain, not walk wild memory.
    auto valid_chunk_off = [&](uint64_t o) {
        return o >= region_off_ + kHeaderArea &&
               o + kChunkStride <= region_off_ + region_bytes_ &&
               (o - region_off_ - kHeaderArea) % kChunkStride == 0;
    };

    uint64_t off = header_->head[header_->alt];
    uint32_t max_id = 0;
    std::vector<VChunk *> chain;
    while (off) {
        if (!valid_chunk_off(off)) {
            ++stats_.replay_chunks_rejected;
            break;
        }
        // Reading one chunk (17 lines) is a short sequential burst.
        VClock::advance(300, TimeKind::PmRead);
        LogChunk *pc = static_cast<LogChunk *>(dev_->at(off));
        if (verify_) {
            // Header crc over one cached line (~a few cycles, charged
            // with the chunk read above). A corrupt or poisoned chunk
            // header ends the chain: everything behind it is
            // unreachable anyway, and adopting a garbage next pointer
            // would walk wild offsets.
            if (dev_->isPoisoned(pc, kHeaderArea) ||
                pc->crc != logChunkCrc(*pc)) {
                ++stats_.replay_chunks_rejected;
                break;
            }
        }
        VChunk *vc = new VChunk;
        vc->chunk_off = off;
        vc->id = pc->id;
        active_.insert(vc, vc->id);
        ++active_count_;
        chain.push_back(vc);
        if (vc->id > max_id)
            max_id = vc->id;

        for (unsigned slot = 0; slot < kLogEntriesPerChunk; ++slot) {
            unsigned phys = map_.physical(slot);
            uint64_t packed = pc->entries[phys];
            if (verify_) {
                // ~1 ns of crc math per entry; a zeroed slot fails the
                // fold too (its csum is 0xa5), so "first bad entry"
                // doubles as "end of the densely-appended chunk". A
                // nonzero bad word is a torn append: the entry never
                // committed, drop it and everything after.
                VClock::advance(1, TimeKind::PmRead);
                if (dev_->isPoisoned(&pc->entries[phys], 8) ||
                    !logEntryChecksumOk(packed)) {
                    if (packed != 0)
                        ++stats_.replay_entries_rejected;
                    break;
                }
            } else if (packed == 0) {
                break; // appends are dense in logical order
            }
            vc->next_slot = slot + 1;
            LogType type = logEntryType(packed);
            if (type == kLogTombstone) {
                uint32_t tgt_chunk = uint32_t(logEntryAddr(packed));
                uint32_t tgt_slot = uint32_t(logEntrySize(packed));
                VChunk *tgt = active_.find(tgt_chunk);
                // The target chunk may have been freed by fast GC
                // after the tombstone was written; then nothing to do.
                if (tgt && bitmapTest(tgt->bitmap, tgt_slot)) {
                    bitmapClear(tgt->bitmap, tgt_slot);
                    --tgt->live;
                }
                bitmapSet(vc->bitmap, slot);
                ++vc->live;
            } else {
                bitmapSet(vc->bitmap, slot);
                ++vc->live;
            }
        }
        off = pc->next;
    }
    next_id_ = max_id + 1;
    tail_ = chain.empty() ? nullptr : chain.back();

    // A crash can commit a chunk's chain link while dropping the
    // num_chunks bump of the same epoch. The chain is authoritative:
    // raise the carve count over every adopted chunk so future carving
    // can never hand out a chunk that is already linked.
    for (VChunk *vc : chain) {
        size_t idx =
            (vc->chunk_off - region_off_ - kHeaderArea) / kChunkStride;
        if (idx >= carved_chunks_)
            carved_chunks_ = idx + 1;
    }
    if (carved_chunks_ != header_->num_chunks) {
        header_->num_chunks = uint32_t(carved_chunks_);
        persistHeader();
        if (flush_)
            dev_->fence();
    }

    // Unreachable carved chunks (e.g. an unpublished list_new from a
    // crashed slow GC) go back to the free pool.
    for (size_t i = 0; i < carved_chunks_; ++i) {
        uint64_t coff = chunkOffset(i);
        bool reachable = false;
        for (VChunk *vc : chain) {
            if (vc->chunk_off == coff) {
                reachable = true;
                break;
            }
        }
        if (!reachable) {
            VChunk *vc = new VChunk;
            vc->chunk_off = coff;
            vc->next_free = free_list_;
            free_list_ = vc;
        }
    }

    // Pass 2: surface the live payload entries in order.
    live_entries_ = 0;
    for (VChunk *vc : chain) {
        LogChunk *pc = chunkAt(*vc);
        for (unsigned slot = 0; slot < vc->next_slot; ++slot) {
            if (!bitmapTest(vc->bitmap, slot))
                continue;
            uint64_t packed = pc->entries[map_.physical(slot)];
            LogType type = logEntryType(packed);
            if (type == kLogTombstone)
                continue;
            ++live_entries_;
            fn(type, logEntryAddr(packed) << 12, logEntrySize(packed),
               LogEntryRef{vc->id, slot});
        }
    }
}

} // namespace nvalloc
