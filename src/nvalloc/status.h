/**
 * @file
 * Structured error reporting for the NVAlloc runtime.
 *
 * Production allocators degrade, they do not abort: every failure that
 * can be produced by the workload (exhaustion, slot pressure, invalid
 * frees) or by the media (corrupt metadata at open) is reported as an
 * NvStatus through the public API instead of an NV_FATAL. The heap
 * additionally tracks a coarse degradation mode so callers can tell
 * "allocation failed once" from "the heap is out of space".
 */

#ifndef NVALLOC_NVALLOC_STATUS_H
#define NVALLOC_NVALLOC_STATUS_H

#include <atomic>
#include <cstdint>

namespace nvalloc {

/** Outcome of a public allocator operation. */
enum class NvStatus : int {
    Ok = 0,
    OutOfMemory,     //!< device exhausted even after reclamation
    LogExhausted,    //!< bookkeeping-log region full after slow GC
    RegionTableFull, //!< persistent region table out of slots
    TooManyThreads,  //!< all kMaxThreads WAL slots are attached
    InvalidFree,     //!< double free or foreign/unaligned pointer
    InvalidArgument, //!< zero or unrepresentable request size
    CorruptMetadata, //!< superblock/log root failed validation at open
    UnknownCtl,      //!< ctlRead name not in the stats registry
    QuotaExceeded,   //!< per-tenant capacity quota hit on the extent path
    HeapUnhealthy,   //!< heap is Degraded/Quarantined; repair it first
};

inline const char *
nvStatusName(NvStatus s)
{
    switch (s) {
    case NvStatus::Ok: return "ok";
    case NvStatus::OutOfMemory: return "out-of-memory";
    case NvStatus::LogExhausted: return "log-exhausted";
    case NvStatus::RegionTableFull: return "region-table-full";
    case NvStatus::TooManyThreads: return "too-many-threads";
    case NvStatus::InvalidFree: return "invalid-free";
    case NvStatus::InvalidArgument: return "invalid-argument";
    case NvStatus::CorruptMetadata: return "corrupt-metadata";
    case NvStatus::UnknownCtl: return "unknown-ctl";
    case NvStatus::QuotaExceeded: return "quota-exceeded";
    case NvStatus::HeapUnhealthy: return "heap-unhealthy";
    }
    return "unknown";
}

/**
 * Per-heap health state machine (pool containment, DESIGN.md §12).
 * Serving is the normal state; Scrubbing is published while a patrol
 * slice is actively walking metadata (informational — operations are
 * unrestricted); Degraded and Quarantined are escalations recorded
 * when the hardened-free pipeline, the auditor, the patrol scrubber or
 * recovery flags corruption. With NvAllocConfig::fault_containment
 * set, Degraded/Quarantined heaps refuse new allocations
 * (NvStatus::HeapUnhealthy) — reads, frees and fsck-repair still work —
 * until a clean audit restores them to Serving.
 */
enum class HeapHealth : int {
    Serving = 0,
    Scrubbing,
    Degraded,    //!< hostile-operation corruption detected (app-level)
    Quarantined, //!< metadata damage confirmed (audit/patrol/recovery)
};

inline const char *
heapHealthName(HeapHealth h)
{
    switch (h) {
    case HeapHealth::Serving: return "serving";
    case HeapHealth::Scrubbing: return "scrubbing";
    case HeapHealth::Degraded: return "degraded";
    case HeapHealth::Quarantined: return "quarantined";
    }
    return "unknown";
}

/**
 * Degradation state machine. Normal -> Reclaiming on first exhaustion
 * (the slow path drains tcaches, forces a log slow-GC and a decay pass,
 * then retries); Reclaiming -> Normal if the retry succeeds, ->
 * Exhausted if it does not. Exhausted -> Normal again as soon as any
 * allocation succeeds (frees opened space back up). Failed is terminal:
 * the heap refused to open over corrupt root metadata and only
 * read-only introspection is allowed.
 */
enum class HeapMode : int {
    Normal = 0,
    Reclaiming,
    Exhausted,
    Failed,
};

inline const char *
heapModeName(HeapMode m)
{
    switch (m) {
    case HeapMode::Normal: return "normal";
    case HeapMode::Reclaiming: return "reclaiming";
    case HeapMode::Exhausted: return "exhausted";
    case HeapMode::Failed: return "failed";
    }
    return "unknown";
}

/** Counters for the graceful-degradation paths; all monotonic. */
struct DegradedStats
{
    std::atomic<uint64_t> reclaim_attempts{0};
    std::atomic<uint64_t> reclaim_successes{0};
    std::atomic<uint64_t> failed_allocs{0};
    std::atomic<uint64_t> invalid_frees{0};
    std::atomic<uint64_t> failed_attaches{0};
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_STATUS_H
