/**
 * @file
 * Heap auditor: an fsck for NVAlloc heaps.
 *
 * Walks every persistent metadata structure — superblock, region
 * table, large-extent state, slab headers and bitmaps, the
 * bookkeeping-log chain, the per-thread WAL rings, the quarantine
 * list — and cross-checks each against both its own integrity rules
 * (magic, crc, poison, structural bounds) and the volatile mirrors the
 * allocator is currently operating on. The result is a structured
 * AuditReport with one counter per violation class, so tests can
 * assert "clean after recovery" and operators can see exactly which
 * invariant a corrupted heap breaks.
 *
 * Invariants checked:
 *  - superblock magic/version/crc valid, not poisoned, config fields
 *    within bounds;
 *  - every region-table entry decodes to an in-device region that the
 *    large allocator also knows (and vice versa), with no overlap;
 *  - the extents of each region tile it exactly: first extent at the
 *    region header boundary, no gaps, no overlaps, last one flush with
 *    the region end;
 *  - every vslab's persistent header verifies, its bitmap popcount
 *    equals the live counter (the whole bitmap is scanned, so a stray
 *    bit outside the active geometry is caught too), its volatile
 *    bitmap agrees with the availability counter, its morph index
 *    agrees with cnt_slab, and an activated slab extent backs it;
 *  - an activated slab extent without a vslab must be quarantined;
 *  - the bookkeeping-log chain walks cleanly (structural offsets,
 *    chunk crcs, entry checksums), its live entries and the activated
 *    extents reference each other one-to-one;
 *  - occupied WAL entries checksum-verify;
 *  - the quarantine list is structurally sound and no quarantined slab
 *    is simultaneously live;
 *  - poisoned media lines are classified free vs live (informational:
 *    media loss on user data is the application's to handle, and a
 *    poisoned free line is scrubbable — neither makes the *metadata*
 *    unsound on its own).
 *
 * repair() fixes what is derivable without guessing: rebuilds
 * persistent bitmaps from the volatile truth (only when no block is
 * lent), rewrites slab header lines from the volatile geometry mirror,
 * zeroes torn WAL entries, quarantines orphaned slab extents, and
 * scrubs poisoned-but-free lines (zero + persist + clear poison).
 * Counter mismatches and log orphans are reported but never "fixed" by
 * mutating state whose ground truth is unknown.
 *
 * The auditor must run on a quiescent heap: no concurrent mutators.
 */

#ifndef NVALLOC_NVALLOC_AUDITOR_H
#define NVALLOC_NVALLOC_AUDITOR_H

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace nvalloc {

class NvAlloc;

/** Structured audit result: one counter per violation class. */
struct AuditReport
{
    // Violations (non-zero => heap not clean).
    uint64_t superblock_bad = 0;   //!< crc/magic/poison/bounds
    uint64_t region_table_bad = 0; //!< table vs volatile regions
    uint64_t extent_overlap = 0;
    uint64_t extent_gap = 0;
    uint64_t slab_header_bad = 0;
    uint64_t slab_veh_mismatch = 0; //!< slab without extent or v.v.
    uint64_t bitmap_mismatch = 0;   //!< popcount != live counter
    uint64_t counter_mismatch = 0;  //!< volatile counters disagree
    uint64_t log_chain_bad = 0;     //!< bad chunk offset/crc/cycle
    uint64_t log_entry_bad = 0;     //!< nonzero entry, bad checksum
    uint64_t log_entry_orphan = 0;  //!< live entry, no extent
    uint64_t veh_unlogged = 0;      //!< activated extent, no entry
    uint64_t wal_entry_bad = 0;     //!< occupied entry, bad crc
    uint64_t tx_orphan_entries = 0; //!< tx entries of a tx that is
                                    //!< neither open nor resolved
    uint64_t tx_conflict_staged = 0; //!< staged block not allocated
    uint64_t quarantine_bad = 0;

    // Informational (do not make the heap un-clean).
    uint64_t poisoned_free_lines = 0;
    uint64_t poisoned_live_lines = 0;
    uint64_t canary_stomped = 0; //!< live block, dirtied canary word
                                 //!< (app overflow, not metadata)

    // Repair outcomes (repair() only).
    uint64_t repaired_headers = 0;
    uint64_t repaired_bitmaps = 0;
    uint64_t repaired_wal_entries = 0;
    uint64_t repaired_tx_entries = 0; //!< orphaned tx entries scrubbed
    uint64_t requarantined_slabs = 0;
    uint64_t scrubbed_lines = 0;

    /** Human-readable detail, one line per finding (capped). */
    std::vector<std::string> notes;

    uint64_t
    violations() const
    {
        return superblock_bad + region_table_bad + extent_overlap +
               extent_gap + slab_header_bad + slab_veh_mismatch +
               bitmap_mismatch + counter_mismatch + log_chain_bad +
               log_entry_bad + log_entry_orphan + veh_unlogged +
               wal_entry_bad + tx_orphan_entries + tx_conflict_staged +
               quarantine_bad;
    }

    bool clean() const { return violations() == 0; }

    /** Multi-line counter dump (fsck output, test failure messages). */
    std::string summary() const;

    /** Machine-readable report: every counter (including zeros, so
     *  consumers need no schema knowledge), verdict, and notes. */
    std::string json() const;
};

/**
 * Position of the incremental patrol walk across the heap's metadata.
 * Owned by the heap (NvAlloc) so it persists across maintenance
 * slices; each patrolStep() advances it by a bounded number of items
 * and wraps phase 3 -> 0 when a full pass completes.
 */
struct PatrolCursor
{
    unsigned phase = 0; //!< 0 superblock, 1 region table, 2 slabs,
                        //!< 3 log chain
    uint64_t pos = 0;   //!< phase-relative ordinal
    uint64_t passes = 0; //!< completed full walks
};

/** Outcome of one bounded patrol slice. */
struct PatrolSliceResult
{
    unsigned items = 0;    //!< metadata items examined
    unsigned findings = 0; //!< stable damage declared
    unsigned repaired = 0; //!< findings fixed in place (slab headers)
    unsigned retries = 0;  //!< transient mismatches re-read
    bool wrapped = false;  //!< a full pass completed this slice
    std::vector<std::string> notes; //!< one line per finding (capped)
};

class HeapAuditor
{
  public:
    explicit HeapAuditor(NvAlloc &alloc);

    /** Read-only full-heap audit. */
    AuditReport audit();

    /** Audit, fixing every derivable violation along the way; the
     *  returned report counts both what was found and what was
     *  repaired. Run audit() again afterwards to confirm clean. */
    AuditReport repair();

    /**
     * Online patrol scrub: examine up to `max_items` metadata items
     * starting at `cur` — superblock magic/crc/poison, region-table
     * entry bounds, slab headers + persistent-bitmap popcounts (under
     * the owning arena's vlock), bookkeeping-log chunk headers (under
     * the large allocator's lock) — against a LIVE mutator.
     *
     * Unlike audit()/repair() this neither pauses maintenance nor
     * requires quiescence: it is designed to be called FROM a
     * maintenance slice (stage 5), takes only the per-structure locks
     * it needs for the current batch, and treats a mismatch observed
     * once as potentially transient: the item is re-read up to
     * `max_retries` times and declared damaged only when the
     * observation is stable (identical and still wrong every time).
     * Stable slab-header damage is repaired in place when derivable
     * (VSlab::repairHeader); everything else is reported for the
     * caller to escalate to the heap health machine.
     */
    PatrolSliceResult patrolStep(PatrolCursor &cur, unsigned max_items,
                                 unsigned max_retries);

  private:
    /** Snapshot of one VEH (state mirrors Veh::State's values). */
    struct ExtSnap
    {
        uint64_t off;
        uint64_t size;
        int state; //!< 0 activated, 1 reclaimed, 2 retained
        bool is_slab;
    };

    NvAlloc &a_;
    bool repair_ = false;
    AuditReport rep_;

    std::vector<ExtSnap> extents_; //!< sorted by offset
    std::vector<std::pair<uint64_t, uint64_t>> regions_; //!< (off, size)
    std::unordered_set<uint64_t> log_chunks_; //!< active chunk offsets

    AuditReport run(bool repair);
    void note(const std::string &msg);
    unsigned patrolSuperblock(PatrolSliceResult &res);
    unsigned patrolRegionTable(PatrolCursor &cur, unsigned budget,
                               PatrolSliceResult &res);
    unsigned patrolSlabs(PatrolCursor &cur, unsigned budget,
                         unsigned max_retries, PatrolSliceResult &res);
    unsigned patrolLogChain(PatrolCursor &cur, unsigned budget,
                            PatrolSliceResult &res);
    void checkSuperblock();
    void checkRegionsAndExtents();
    void checkSlabs();
    void checkExtentJournal();
    void checkWalRings();
    void checkTxRecords();
    void checkQuarantine();
    void checkPoison();
    bool lineIsFree(uint64_t line);
    void scrubLine(uint64_t line);
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_AUDITOR_H
