/**
 * @file
 * Transaction layer implementation (tx.h, DESIGN.md §11): the
 * txBegin/txAlloc/txFree/txWrite/txCommit/txAbort surface, the
 * commit/abort apply paths, and the recovery-side run resolution
 * called from replayWals.
 */

#include <algorithm>
#include <cstring>

#include "common/json.h"
#include "common/logging.h"
#include "nvalloc/nvalloc.h"
#include "pm/vclock.h"

namespace nvalloc {

namespace {

constexpr uint64_t kTxCpuNs = 20; //!< modeled per-tx-call CPU cost

void
bumpRejected(TxStats &s)
{
    s.rejected.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

NvStatus
NvAlloc::txRejected()
{
    bumpRejected(tx_mgr_.stats());
    return failOp(NvStatus::InvalidArgument);
}

NvStatus
NvAlloc::txBegin(ThreadCtx &ctx)
{
    if (open_failed_ || mode() == HeapMode::Failed)
        return txRejected();
    // Containment: a Degraded/Quarantined heap refuses new
    // transactions like it refuses plain mutations (an already-open tx
    // is allowed to resolve — commit and abort both shrink state).
    if (refuseUnhealthy())
        return NvStatus::HeapUnhealthy;
    if (!logMode()) {
        // The protocol journals tx-tagged entries through the
        // per-thread WAL; the GC variant skips small-op journaling
        // entirely and the IC variant has no replay, so neither can
        // resolve a run after a crash.
        return txRejected();
    }
    if (ctx.tx.open())
        return txRejected(); // nested begin
    ctx.tx.id = tx_mgr_.beginTx();
    ctx.tx.ops.reserve(kTxMaxOps);
    // Hold a maintenance pin for the whole tx lifetime: background
    // slow GC relocates bookkeeping-log entries, and an uncommitted
    // tx's large allocations must keep their log refs stable until
    // commit or abort resolves them.
    maint_.pin();
    tx_mgr_.stats().begins.fetch_add(1, std::memory_order_relaxed);
    tel_.event(TraceOp::TxBegin, ctx.tx.id);
    VClock::advance(kTxCpuNs, TimeKind::Other);
    return NvStatus::Ok;
}

uint64_t
NvAlloc::txAlloc(ThreadCtx &ctx, size_t size, uint64_t *where)
{
    if (!ctx.tx.open()) {
        txRejected();
        return 0;
    }
    if (ctx.tx.ops.size() >= kTxMaxOps) {
        tx_mgr_.stats().oversize.fetch_add(1, std::memory_order_relaxed);
        failOp(NvStatus::InvalidArgument);
        return 0;
    }
    if (size == 0) {
        txRejected();
        return 0;
    }
    uint64_t where_off =
        where && dev_.contains(where) ? dev_.offsetOf(where) : kWalNoWhere;

    // Reuse the plain small/large paths; journal_tx_id makes their one
    // WAL append tx-tagged. Guard sampling is deliberately bypassed:
    // guard registrations are volatile and a sampled tx alloc would
    // lose its redzone contract across the crash the tx exists for.
    ctx.journal_tx_id = ctx.tx.id;
    uint64_t off = size <= smallLimit()
                       ? allocSmall(ctx, size, where_off)
                       : allocLarge(ctx, size, where_off);
    ctx.journal_tx_id = 0;
    if (off == 0)
        return 0; // failAlloc already classified it

    // The block is allocated and journaled but unpublished: stage it
    // so plain free() rejects it until commit publishes the offset.
    tx_mgr_.stage(off);
    TxOp op;
    op.kind = TxOp::Kind::Alloc;
    op.off = off;
    op.where = where;
    op.size = size;
    ctx.tx.ops.push_back(op);
    tx_mgr_.stats().ops_alloc.fetch_add(1, std::memory_order_relaxed);
    return off;
}

NvStatus
NvAlloc::txFree(ThreadCtx &ctx, uint64_t off)
{
    if (!ctx.tx.open())
        return txRejected();
    if (ctx.tx.ops.size() >= kTxMaxOps) {
        tx_mgr_.stats().oversize.fetch_add(1, std::memory_order_relaxed);
        return failOp(NvStatus::InvalidArgument);
    }
    if (off == 0 || off >= dev_.size())
        return rejectFree(off, CorruptionKind::WildFree);

    // Stage before validating so no other thread can pass its own
    // staged-probe between our validation and the commit; back out on
    // any rejection below.
    if (!tx_mgr_.stage(off))
        return rejectFree(off, CorruptionKind::TxStagedFree);

    // Same ordered validation as freeOffset, but with the mutation
    // deferred: the block must be provably ours and allocated NOW; the
    // bitmap/extent state only changes at commit.
    if (VSlab *slab = slabOf(off)) {
        VLockGuard g(slab->arena->lock);
        unsigned old_idx = 0;
        if (slab->isOldBlock(off, old_idx)) {
            unsigned old_cls = slab->header()->old_size_class;
            if (cfg_.redzone_canaries &&
                !canaryOk(off, classToSize(old_cls))) {
                hardening_.report(CorruptionKind::CanaryStomp, off,
                                  old_cls,
                                  "old-geometry block canary dirtied");
                hardening_.noteLeakedBlock();
                tx_mgr_.unstage(off);
                return NvStatus::Ok; // report-and-leak, nothing staged
            }
        } else {
            unsigned idx = slab->blockIndexOf(off);
            if (idx >= slab->capacity() || slab->blockOffset(idx) != off) {
                tx_mgr_.unstage(off);
                return rejectFree(off, CorruptionKind::MisalignedFree);
            }
            if (!slab->isAllocated(idx)) {
                tx_mgr_.unstage(off);
                return rejectFree(off, CorruptionKind::DoubleFree);
            }
            // Canary stomps are detected here at stage time (the live
            // heap's canaries are trustworthy; the recovery redo path's
            // are not until restamp) and handled report-and-leak: the
            // block stays allocated and no deferred free is journaled.
            if (cfg_.redzone_canaries &&
                !canaryOk(off, slab->blockSize())) {
                hardening_.report(CorruptionKind::CanaryStomp, off,
                                  slab->sizeClass(),
                                  "block canary dirtied — overflow "
                                  "into the canary word");
                hardening_.noteLeakedBlock();
                tx_mgr_.unstage(off);
                return NvStatus::Ok; // report-and-leak, nothing staged
            }
        }
    } else {
        Veh *veh = large_.findVeh(off);
        if (!veh) {
            tx_mgr_.unstage(off);
            return rejectFree(off, CorruptionKind::WildFree);
        }
        if (veh->off != off || veh->is_slab) {
            tx_mgr_.unstage(off);
            return rejectFree(off, CorruptionKind::MisalignedFree);
        }
        if (veh->state != Veh::State::Activated) {
            tx_mgr_.unstage(off);
            return rejectFree(off, CorruptionKind::DoubleFree);
        }
    }

    // Journal the deferred free (one flush, tagged). No attach word is
    // cleared here — pair the free with a txWrite of the owning
    // pointer word to clear it in the same atomic unit.
    ctx.wal.append(kWalFree, off, kWalNoWhere, 0, ctx.tx.id);
    TxOp op;
    op.kind = TxOp::Kind::Free;
    op.off = off;
    ctx.tx.ops.push_back(op);
    tx_mgr_.stats().ops_free.fetch_add(1, std::memory_order_relaxed);
    VClock::advance(kTxCpuNs, TimeKind::Other);
    return NvStatus::Ok;
}

NvStatus
NvAlloc::txWrite(ThreadCtx &ctx, uint64_t *word, uint64_t value)
{
    if (!ctx.tx.open())
        return txRejected();
    if (ctx.tx.ops.size() >= kTxMaxOps) {
        tx_mgr_.stats().oversize.fetch_add(1, std::memory_order_relaxed);
        return failOp(NvStatus::InvalidArgument);
    }
    // The undo value must be recoverable from the entry alone, so the
    // target has to be a persistent, aligned word inside the device.
    if (!word || !dev_.contains(word))
        return txRejected();
    uint64_t woff = dev_.offsetOf(word);
    if ((woff & 7) != 0)
        return txRejected();

    uint64_t old = *word;
    // Journal undo (where_off) + redo (size) before the in-place
    // write: crash before the entry = word untouched; crash after =
    // the entry restores or re-applies it either way.
    ctx.wal.append(kWalTxData, woff, old, value, ctx.tx.id);
    *word = value;
    dev_.persistFence(word, sizeof(uint64_t), TimeKind::FlushData);

    TxOp op;
    op.kind = TxOp::Kind::Write;
    op.off = woff;
    op.old_value = old;
    op.new_value = value;
    ctx.tx.ops.push_back(op);
    tx_mgr_.stats().ops_write.fetch_add(1, std::memory_order_relaxed);
    VClock::advance(kTxCpuNs, TimeKind::Other);
    return NvStatus::Ok;
}

NvStatus
NvAlloc::txCommit(ThreadCtx &ctx)
{
    if (!ctx.tx.open())
        return txRejected();

    // Epoch separation: every op entry is already individually fenced,
    // but this fence guarantees the commit record can only become
    // durable in a strictly later epoch than all of them.
    dev_.fence();
    // The append's own persist+fence is the commit point: ONE flush
    // publishes the whole transaction.
    ctx.wal.appendTxMark(ctx.tx.id, kWalTxCommit,
                         uint64_t(ctx.tx.ops.size()));
    tel_.event(TraceOp::TxCommit, ctx.tx.id);

    // Apply phase — deliberately journal-free: another WAL append here
    // would displace the commit record as the ring's newest entry, and
    // a crash mid-apply would then lose the not-yet-applied remainder.
    // Recovery redoes this loop idempotently instead.
    for (const TxOp &op : ctx.tx.ops) {
        switch (op.kind) {
        case TxOp::Kind::Alloc:
            publish(op.where, op.off);
            break;
        case TxOp::Kind::Free:
            applyTxFree(op.off);
            break;
        case TxOp::Kind::Write:
            break; // landed in place at txWrite time
        }
    }

    // Seal: every applied effect is individually persisted above, so
    // this record makes "the apply phase completed" durable — recovery
    // then leaves the run alone instead of redoing it. The seal must
    // land before the caller releases whatever lock serializes
    // conflicting transactions: redoing an applied run after a *later*
    // transaction committed a write to the same word would rewind that
    // word (see kWalTxApplied in layout.h). A crash before the seal
    // implies no later conflicting transaction could have started, so
    // the redo recovery performs instead is safe.
    dev_.fence();
    ctx.wal.appendTxMark(ctx.tx.id, kWalTxApplied,
                         uint64_t(ctx.tx.ops.size()));

    finishTx(ctx, /*committed=*/true);
    VClock::advance(kTxCpuNs, TimeKind::Other);
    return NvStatus::Ok;
}

NvStatus
NvAlloc::txAbort(ThreadCtx &ctx)
{
    if (!ctx.tx.open())
        return txRejected();

    // Roll back newest-first so overlapping word updates unwind in
    // reverse order. Crash-safe at every point: until the abort record
    // below lands, recovery sees a recordless run and performs this
    // same (idempotent) undo itself.
    for (auto it = ctx.tx.ops.rbegin(); it != ctx.tx.ops.rend(); ++it) {
        switch (it->kind) {
        case TxOp::Kind::Write: {
            auto *word = static_cast<uint64_t *>(dev_.at(it->off));
            *word = it->old_value;
            dev_.persistFence(word, sizeof(uint64_t),
                              TimeKind::FlushData);
            break;
        }
        case TxOp::Kind::Alloc:
            undoTxAlloc(it->off);
            break;
        case TxOp::Kind::Free:
            break; // nothing was mutated at stage time
        }
    }

    dev_.fence();
    ctx.wal.appendTxMark(ctx.tx.id, kWalTxAbort,
                         uint64_t(ctx.tx.ops.size()));
    tel_.event(TraceOp::TxAbort, ctx.tx.id);
    finishTx(ctx, /*committed=*/false);
    VClock::advance(kTxCpuNs, TimeKind::Other);
    return NvStatus::Ok;
}

void
NvAlloc::finishTx(ThreadCtx &ctx, bool committed)
{
    for (const TxOp &op : ctx.tx.ops) {
        if (op.kind != TxOp::Kind::Write)
            tx_mgr_.unstage(op.off);
    }
    tx_mgr_.endTx(ctx.tx.id);
    if (committed)
        tx_mgr_.stats().commits.fetch_add(1, std::memory_order_relaxed);
    else
        tx_mgr_.stats().aborts.fetch_add(1, std::memory_order_relaxed);
    ctx.tx.reset();
    maint_.unpin();
}

/**
 * Commit-time deferred free: the mutation half of freeOffset's slab /
 * large / guard paths, without journaling (the tx-tagged kWalFree
 * entry from txFree is the journal) and with idempotent guards so the
 * recovery redo path can run the same code after a partial apply.
 * Deferred frees route through the delayed-reuse quarantine exactly
 * like hot frees do; the tcache is bypassed (the committing thread may
 * not own the freeing thread's cache).
 */
void
NvAlloc::applyTxFree(uint64_t off)
{
    if (cfg_.hardened_free && cfg_.guard_sample_rate &&
        hardening_.isGuard(off)) {
        HardeningManager::GuardInfo info;
        if (!hardening_.takeGuard(off, &info))
            return; // already resolved
        if (!hardening_.guardRedzoneIntact(off, info)) {
            hardening_.report(
                CorruptionKind::GuardOverflow, off, ~0u,
                "guard redzone dirtied — overflow past the allocation");
        }
        std::memset(dev_.at(off), HardeningManager::kGuardFreeByte,
                    info.user_size);
        large_.free(off);
        hardening_.watchFreedGuard(off, info);
        hardening_.noteGuardFree();
        tel_.noteLargeFree(info.extent_size, off);
        return;
    }

    VSlab *slab = slabOf(off);
    if (!slab) {
        Veh *veh = large_.findVeh(off);
        if (veh && veh->off == off &&
            veh->state == Veh::State::Activated && !veh->is_slab) {
            uint64_t veh_size = veh->size;
            large_.free(off);
            hardening_.noteValidatedFree();
            tel_.noteLargeFree(veh_size, off);
            maint_.pollLogPressure();
        }
        return;
    }

    Arena *arena = slab->arena;
    unsigned cls = 0;
    unsigned bsize = 0;
    unsigned idx = 0;
    bool to_quarantine = false;
    {
        VLockGuard g(arena->lock);
        unsigned old_idx = 0;
        if (slab->isOldBlock(off, old_idx)) {
            unsigned old_cls = slab->header()->old_size_class;
            arena->freeOld(slab, old_idx);
            hardening_.noteValidatedFree();
            tel_.noteSmallFree(old_cls, off);
            return;
        }
        idx = slab->blockIndexOf(off);
        if (idx >= slab->capacity() || slab->blockOffset(idx) != off ||
            !slab->isAllocated(idx))
            return; // already resolved (idempotent redo)
        cls = slab->sizeClass();
        bsize = slab->blockSize();
        bool keep_unpinned = cfg_.slab_morphing &&
                             slab->occupancy() <= cfg_.morph_threshold;
        // hardening_.ready() is false while recovery replays a redo
        // run (the manager is wired after recoverHeap returns): those
        // frees go direct — the quarantine is a volatile delayed-reuse
        // defense against live mutators, and there are none yet.
        bool quarantine_on =
            hardening_.ready() &&
            (cfg_.quarantine_depth > 0 ||
             (cfg_.redzone_canaries &&
              hardening_.policy() == HardeningPolicy::Quarantine));
        if (quarantine_on && !keep_unpinned) {
            slab->markFreeToTcache(idx);
            to_quarantine = true;
        } else {
            arena->freeDirect(slab, idx);
        }
    }
    if (to_quarantine)
        hardening_.quarantinePush(slab, idx, off, bsize);
    hardening_.noteValidatedFree();
    tel_.noteSmallFree(cls, off);
}

/** Abort-time rollback of a tx allocation: return the (unpublished)
 *  block, idempotently — recovery may already have undone it. */
void
NvAlloc::undoTxAlloc(uint64_t off)
{
    if (VSlab *slab = slabOf(off)) {
        unsigned idx = slab->blockIndexOf(off);
        if (idx < slab->capacity() && slab->blockOffset(idx) == off &&
            slab->isAllocated(idx)) {
            VLockGuard g(slab->arena->lock);
            slab->arena->freeDirect(slab, idx);
        }
        return;
    }
    Veh *veh = large_.findVeh(off);
    if (veh && veh->off == off && veh->state == Veh::State::Activated &&
        !veh->is_slab) {
        large_.free(off);
    }
}

// ---- recovery-side resolution (called from replayWals) --------------

/**
 * The ring's newest intact entry belongs to transaction `tx_id`:
 * gather the whole run and resolve it all-or-nothing. An applied seal
 * or an abort record present → the run fully resolved *live* (apply
 * loop resp. rollback completed, each effect persisted) and recovery
 * must leave it alone — re-applying or re-undoing it here could
 * rewind words that later transactions wrote. A commit record without
 * the seal → redo forward (the crash hit the apply phase or the
 * instant after the record); otherwise (no record = in flight) → undo
 * backward. Both directions are idempotent, so a crash during
 * recovery itself just resolves again.
 */
void
NvAlloc::resolveTxRun(uint64_t ring_off, uint32_t tx_id)
{
    std::vector<WalEntry> run;
    bool committed = false;
    bool resolved_live = false;
    unsigned rejected = 0;
    Wal::forEachIntact(
        &dev_, ring_off,
        [&](const WalEntry &e) {
            if (e.tx_id != tx_id)
                return;
            if (e.tx_mark == kWalTxCommit)
                committed = true;
            else if (e.tx_mark == kWalTxApplied ||
                     e.tx_mark == kWalTxAbort)
                resolved_live = true;
            else if (e.tx_mark == kWalTxOp)
                run.push_back(e);
        },
        &rejected);
    (void)rejected; // newestEntry already counted the ring's rejects
    if (resolved_live)
        return; // completed before the crash; nothing in flight
    std::sort(run.begin(), run.end(),
              [](const WalEntry &a, const WalEntry &b) {
                  return a.seq < b.seq;
              });
    if (committed) {
        txRedoRun(run);
        ++recovery_.tx_committed;
        ++tx_mgr_.stats().recovered_committed;
    } else {
        txUndoRun(run);
        ++recovery_.tx_rolled_back;
        ++tx_mgr_.stats().recovered_rolled_back;
    }
}

void
NvAlloc::txRedoRun(const std::vector<WalEntry> &run)
{
    for (const WalEntry &e : run) {
        WalOp op = WalOp(e.block_op & 3);
        uint64_t block = e.block_op >> 2;
        if (op == kWalAlloc) {
            // The allocation bit went durable before the commit record
            // could; re-claim defensively, then finish the publish the
            // apply phase may not have reached. Publish only when the
            // block demonstrably exists (slab bit claimed, or an
            // activated extent at that offset): a torn-line crash can
            // durably commit the record while the extent's own log
            // entry was dropped, and an attach word must never point
            // at space recovery just returned to the free pool.
            bool present = false;
            if (VSlab *slab = slabOf(block)) {
                unsigned idx = slab->blockIndexOf(block);
                if (idx < slab->capacity() &&
                    slab->blockOffset(idx) == block) {
                    if (!slab->isAllocated(idx)) {
                        VLockGuard g(slab->arena->lock);
                        slab->claimBlock(idx);
                    }
                    present = true;
                }
            } else {
                Veh *veh = large_.findVeh(block);
                present = veh && veh->off == block && !veh->is_slab &&
                          veh->state == Veh::State::Activated;
            }
            if (present && e.where_off != kWalNoWhere &&
                e.where_off + sizeof(uint64_t) <= dev_.size()) {
                auto *w =
                    static_cast<uint64_t *>(dev_.at(e.where_off));
                if (*w != block) {
                    *w = block;
                    dev_.persistFence(w, sizeof(uint64_t),
                                      TimeKind::FlushData);
                }
            }
            ++recovery_.wal_completions;
        } else if (op == kWalFree) {
            applyTxFree(block);
            ++recovery_.wal_completions;
        } else if (op == kWalTxData) {
            // Word update: re-apply the redo value.
            if (block + sizeof(uint64_t) <= dev_.size() &&
                (block & 7) == 0) {
                auto *w = static_cast<uint64_t *>(dev_.at(block));
                if (*w != e.size) {
                    *w = e.size;
                    dev_.persistFence(w, sizeof(uint64_t),
                                      TimeKind::FlushData);
                }
            }
            ++recovery_.wal_completions;
        }
    }
}

void
NvAlloc::txUndoRun(const std::vector<WalEntry> &run)
{
    for (auto it = run.rbegin(); it != run.rend(); ++it) {
        const WalEntry &e = *it;
        WalOp op = WalOp(e.block_op & 3);
        uint64_t block = e.block_op >> 2;
        if (op == kWalAlloc) {
            undoTxAlloc(block);
            // The publish only happens after the commit record, so the
            // attach word cannot hold the block — but scrub it
            // defensively against torn-entry replay with verify off.
            if (e.where_off != kWalNoWhere &&
                e.where_off + sizeof(uint64_t) <= dev_.size()) {
                auto *w =
                    static_cast<uint64_t *>(dev_.at(e.where_off));
                if (*w == block) {
                    *w = 0;
                    dev_.persistFence(w, sizeof(uint64_t),
                                      TimeKind::FlushData);
                }
            }
            ++recovery_.wal_undos;
        } else if (op == kWalTxData) {
            // Word update: restore the undo value.
            if (block + sizeof(uint64_t) <= dev_.size() &&
                (block & 7) == 0) {
                auto *w = static_cast<uint64_t *>(dev_.at(block));
                if (*w != e.where_off) {
                    *w = e.where_off;
                    dev_.persistFence(w, sizeof(uint64_t),
                                      TimeKind::FlushData);
                }
            }
            ++recovery_.wal_undos;
        }
        // kWalFree: staged only — nothing was mutated, nothing to undo.
    }
}

std::string
NvAlloc::txJson() const
{
    const TxStats &s = tx_mgr_.stats();
    JsonWriter w;
    w.beginObject();
    auto add = [&](const char *k, uint64_t v) {
        w.key(k);
        w.value(v);
    };
    add("begins", s.begins.load(std::memory_order_relaxed));
    add("commits", s.commits.load(std::memory_order_relaxed));
    add("aborts", s.aborts.load(std::memory_order_relaxed));
    add("ops_alloc", s.ops_alloc.load(std::memory_order_relaxed));
    add("ops_free", s.ops_free.load(std::memory_order_relaxed));
    add("ops_write", s.ops_write.load(std::memory_order_relaxed));
    add("rejected", s.rejected.load(std::memory_order_relaxed));
    add("oversize", s.oversize.load(std::memory_order_relaxed));
    add("plain_ops_rejected",
        s.plain_ops_rejected.load(std::memory_order_relaxed));
    add("recovered_committed", s.recovered_committed);
    add("recovered_rolled_back", s.recovered_rolled_back);
    add("open", tx_mgr_.openCount());
    add("staged_blocks", tx_mgr_.stagedCount());
    w.endObject();
    return w.take();
}

} // namespace nvalloc
