/**
 * @file
 * Thread-local cache with interleaved sub-tcache layout (paper §2.1,
 * §5.1 / Fig. 6).
 *
 * A tcache keeps one freelist of ready blocks per size class. With the
 * interleaved layout the freelist is split into S sub-tcaches, each
 * holding blocks whose slab-bitmap bits live in the same cache line; a
 * cursor rotates across sub-tcaches so contiguous allocations persist
 * bits in S different lines. Without interleaving, everything lands in
 * one LIFO sub-tcache — the reflush-prone baseline.
 */

#ifndef NVALLOC_NVALLOC_TCACHE_H
#define NVALLOC_NVALLOC_TCACHE_H

#include <cstdint>
#include <vector>

#include "common/size_classes.h"
#include "nvalloc/slab.h"

namespace nvalloc {

/** One cached free block: address plus its owning slab and index, so
 *  the hot paths skip the radix lookup. */
struct CachedBlock
{
    uint64_t off = 0;
    VSlab *slab = nullptr;
    unsigned idx = 0;
};

class TCache
{
  public:
    static constexpr unsigned kMaxSub = 32;

    TCache(unsigned stripes, bool interleaved, unsigned capacity)
        : subs_(interleaved ? (stripes < 2 ? 2 : stripes) : 1),
          capacity_(capacity)
    {
        if (subs_ > kMaxSub)
            subs_ = kMaxSub;
    }

    unsigned subCount() const { return subs_; }
    unsigned capacity() const { return capacity_; }

    unsigned
    count(unsigned cls) const
    {
        return classes_[cls].count;
    }

    bool full(unsigned cls) const { return count(cls) >= capacity_; }
    bool empty(unsigned cls) const { return count(cls) == 0; }

    /**
     * Take the next block, rotating the cursor across sub-tcaches
     * (LIFO within a sub-tcache). Returns false when empty.
     */
    bool
    pop(unsigned cls, CachedBlock &out)
    {
        ClassCache &cc = classes_[cls];
        if (cc.count == 0)
            return false;
        for (unsigned probe = 0; probe < subs_; ++probe) {
            auto &sub = cc.sub[cc.cursor];
            cc.cursor = (cc.cursor + 1) % subs_;
            if (!sub.empty()) {
                out = sub.back();
                sub.pop_back();
                --cc.count;
                return true;
            }
        }
        NV_PANIC("tcache count/contents mismatch");
    }

    /** Insert a block; returns false if the class cache is full. */
    bool
    push(unsigned cls, const CachedBlock &block)
    {
        ClassCache &cc = classes_[cls];
        if (cc.count >= capacity_)
            return false;
        cc.sub[bucketOf(block)].push_back(block);
        ++cc.count;
        return true;
    }

    /** Drain every cached block of every class, invoking
     *  fn(cls, block); used at thread detach. */
    template <typename Fn>
    void
    drain(Fn &&fn)
    {
        for (unsigned cls = 0; cls < kNumSizeClasses; ++cls) {
            ClassCache &cc = classes_[cls];
            for (auto &sub : cc.sub) {
                for (const CachedBlock &b : sub)
                    fn(cls, b);
                sub.clear();
            }
            cc.count = 0;
        }
    }

  private:
    struct ClassCache
    {
        std::vector<CachedBlock> sub[kMaxSub];
        unsigned cursor = 0;
        unsigned count = 0;
    };

    /** Blocks whose bits share a cache line share a sub-tcache. */
    unsigned
    bucketOf(const CachedBlock &block) const
    {
        if (subs_ == 1)
            return 0;
        uint64_t line = block.slab->slabOffset() / kCacheLine +
                        block.slab->bitLineOf(block.idx);
        return unsigned(line % subs_);
    }

    ClassCache classes_[kNumSizeClasses];
    unsigned subs_;
    unsigned capacity_;
};

} // namespace nvalloc

#endif // NVALLOC_NVALLOC_TCACHE_H
