/**
 * @file
 * Minimal JSON emitter.
 *
 * Builds a JSON document into a std::string with automatic comma
 * placement. Deliberately tiny: objects, arrays, string/number/bool
 * scalars — exactly what the stats snapshot, the fsck report and the
 * bench result dumps need. No parsing, no formatting options beyond
 * compact output.
 */

#ifndef NVALLOC_COMMON_JSON_H
#define NVALLOC_COMMON_JSON_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace nvalloc {

class JsonWriter
{
  public:
    JsonWriter &
    beginObject()
    {
        prefix();
        out_ += '{';
        fresh_.push_back(true);
        return *this;
    }

    JsonWriter &
    endObject()
    {
        out_ += '}';
        fresh_.pop_back();
        return *this;
    }

    JsonWriter &
    beginArray()
    {
        prefix();
        out_ += '[';
        fresh_.push_back(true);
        return *this;
    }

    JsonWriter &
    endArray()
    {
        out_ += ']';
        fresh_.pop_back();
        return *this;
    }

    /** Member key; must be followed by a value or begin*(). */
    JsonWriter &
    key(std::string_view name)
    {
        prefix();
        quote(name);
        out_ += ':';
        pending_key_ = true;
        return *this;
    }

    JsonWriter &
    value(uint64_t v)
    {
        prefix();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(int64_t v)
    {
        prefix();
        out_ += std::to_string(v);
        return *this;
    }

    JsonWriter &
    value(int v)
    {
        return value(static_cast<int64_t>(v));
    }

    JsonWriter &
    value(unsigned v)
    {
        return value(static_cast<uint64_t>(v));
    }

    JsonWriter &
    value(bool v)
    {
        prefix();
        out_ += v ? "true" : "false";
        return *this;
    }

    JsonWriter &
    value(std::string_view v)
    {
        prefix();
        quote(v);
        return *this;
    }

    JsonWriter &
    value(const char *v)
    {
        return value(std::string_view(v));
    }

    const std::string &str() const { return out_; }
    std::string take() { return std::move(out_); }

  private:
    void
    prefix()
    {
        if (pending_key_) {
            pending_key_ = false;
            return;
        }
        if (!fresh_.empty()) {
            if (!fresh_.back())
                out_ += ',';
            fresh_.back() = false;
        }
    }

    void
    quote(std::string_view s)
    {
        out_ += '"';
        for (char ch : s) {
            switch (ch) {
            case '"': out_ += "\\\""; break;
            case '\\': out_ += "\\\\"; break;
            case '\n': out_ += "\\n"; break;
            case '\r': out_ += "\\r"; break;
            case '\t': out_ += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(ch)));
                    out_ += buf;
                } else {
                    out_ += ch;
                }
            }
        }
        out_ += '"';
    }

    std::string out_;
    std::vector<bool> fresh_; //!< per open scope: no members yet
    bool pending_key_ = false;
};

} // namespace nvalloc

#endif // NVALLOC_COMMON_JSON_H
