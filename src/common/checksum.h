/**
 * @file
 * Metadata checksums for torn-persist detection.
 *
 * Two flavours, matched to the budget of the structure they protect:
 *
 *  - crc32(): CRC-32C (Castagnoli), table-driven. Used where a
 *    structure has a dedicated 32-bit field (WAL entries, log chunk
 *    headers, slab headers, the superblock). Detects any single torn
 *    8-byte word within the covered range.
 *  - xorFold8(): folds a 64-bit word to 8 bits with a mixing multiply
 *    and a nonzero seed. Used for the 8-byte bookkeeping-log entries,
 *    which have no room for a wider code; the seed guarantees a valid
 *    entry is never all-zero, so "never written" (zeroed media) always
 *    fails validation.
 */

#ifndef NVALLOC_COMMON_CHECKSUM_H
#define NVALLOC_COMMON_CHECKSUM_H

#include <array>
#include <cstddef>
#include <cstdint>

namespace nvalloc {

namespace detail {

constexpr std::array<uint32_t, 256>
crc32cTable()
{
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0x82f63b78u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

inline constexpr std::array<uint32_t, 256> kCrc32cTable = crc32cTable();

} // namespace detail

/** CRC-32C of `len` bytes at `data`. */
inline uint32_t
crc32(const void *data, size_t len)
{
    const auto *p = static_cast<const uint8_t *>(data);
    uint32_t c = 0xffffffffu;
    for (size_t i = 0; i < len; ++i)
        c = detail::kCrc32cTable[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

/**
 * Fold a 64-bit value to 8 bits. The multiply diffuses every input bit
 * into the top byte so field-swapped values fold differently; the
 * final xor with 0xA5 makes the fold of 0 nonzero.
 */
constexpr uint8_t
xorFold8(uint64_t v)
{
    v *= 0x9e3779b97f4a7c15ull;
    v ^= v >> 32;
    v ^= v >> 16;
    v ^= v >> 8;
    return uint8_t((v & 0xff) ^ 0xa5);
}

} // namespace nvalloc

#endif // NVALLOC_COMMON_CHECKSUM_H
