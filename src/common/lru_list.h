/**
 * @file
 * Intrusive doubly-linked LRU list.
 *
 * Slab morphing scans slabs from least- to most-recently used to pick a
 * transformation candidate (paper §5.2); the VEH lists of the large
 * allocator reuse the same intrusive links. Intrusive linkage avoids a
 * node allocation per element — an allocator cannot call itself to
 * manage its own bookkeeping.
 */

#ifndef NVALLOC_COMMON_LRU_LIST_H
#define NVALLOC_COMMON_LRU_LIST_H

#include <cstddef>

#include "common/logging.h"

namespace nvalloc {

/** Embed one of these per list an object can live on. */
struct LruLink
{
    LruLink *prev = nullptr;
    LruLink *next = nullptr;

    bool linked() const { return prev != nullptr; }
};

/**
 * Intrusive list of T, with the link located at byte offset
 * `LinkOffset` inside T. Head = least recently used; touch() moves an
 * element to the tail (most recently used).
 */
template <typename T, size_t LinkOffset>
class LruList
{
  public:
    LruList()
    {
        head_.prev = &head_;
        head_.next = &head_;
    }

    static LruLink *
    linkOf(T *obj)
    {
        return reinterpret_cast<LruLink *>(
            reinterpret_cast<char *>(obj) + LinkOffset);
    }

    static T *
    objOf(LruLink *link)
    {
        return reinterpret_cast<T *>(
            reinterpret_cast<char *>(link) - LinkOffset);
    }

    bool empty() const { return head_.next == &head_; }
    size_t size() const { return size_; }

    /** Insert at the MRU end. */
    void
    pushBack(T *obj)
    {
        LruLink *l = linkOf(obj);
        NV_ASSERT(!l->linked());
        l->prev = head_.prev;
        l->next = &head_;
        head_.prev->next = l;
        head_.prev = l;
        ++size_;
    }

    /** Insert at the LRU end. */
    void
    pushFront(T *obj)
    {
        LruLink *l = linkOf(obj);
        NV_ASSERT(!l->linked());
        l->next = head_.next;
        l->prev = &head_;
        head_.next->prev = l;
        head_.next = l;
        ++size_;
    }

    void
    remove(T *obj)
    {
        LruLink *l = linkOf(obj);
        NV_ASSERT(l->linked());
        l->prev->next = l->next;
        l->next->prev = l->prev;
        l->prev = l->next = nullptr;
        --size_;
    }

    /** Mark as most recently used. */
    void
    touch(T *obj)
    {
        remove(obj);
        pushBack(obj);
    }

    T *
    front() const
    {
        return empty() ? nullptr : objOf(head_.next);
    }

    T *
    popFront()
    {
        if (empty())
            return nullptr;
        T *obj = objOf(head_.next);
        remove(obj);
        return obj;
    }

    /** Next element after `obj` in LRU→MRU order, or nullptr at end. */
    T *
    next(T *obj) const
    {
        LruLink *l = linkOf(obj)->next;
        return l == &head_ ? nullptr : objOf(l);
    }

  private:
    LruLink head_; // sentinel; prev = MRU tail, next = LRU head
    size_t size_ = 0;
};

/** Convenience macro: list of T linked through member `member`. */
#define NVALLOC_LRU_LIST(T, member) ::nvalloc::LruList<T, offsetof(T, member)>

} // namespace nvalloc

#endif // NVALLOC_COMMON_LRU_LIST_H
