/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * All benchmark workloads take an explicit seed so every run of a bench
 * binary replays the identical allocation trace; together with the
 * virtual-time latency model this makes the reproduced figures
 * deterministic across machines.
 */

#ifndef NVALLOC_COMMON_RNG_H
#define NVALLOC_COMMON_RNG_H

#include <cstdint>

namespace nvalloc {

/** xoshiro256** by Blackman & Vigna; small, fast, and good enough for
 *  workload generation (we never need cryptographic quality). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding, the reference initialization procedure.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi], inclusive on both ends. */
    uint64_t
    uniform(uint64_t lo, uint64_t hi)
    {
        return lo + nextBounded(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return (next() >> 11) * 0x1.0p-53;
    }

    /**
     * Poisson-distributed sample with the given mean, via Knuth's
     * algorithm (adequate for the small means used by DBMStest).
     */
    uint64_t
    poisson(double mean)
    {
        double l = exp0(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= nextDouble();
        } while (p > l);
        return k - 1;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    // Tiny exp() so this header stays <cmath>-free; only called with
    // small negative arguments.
    static double
    exp0(double x)
    {
        double sum = 1.0, term = 1.0;
        for (int i = 1; i < 32; ++i) {
            term *= x / i;
            sum += term;
        }
        return sum;
    }

    uint64_t state_[4];
};

} // namespace nvalloc

#endif // NVALLOC_COMMON_RNG_H
