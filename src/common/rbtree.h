/**
 * @file
 * Intrusive red–black tree.
 *
 * The persistent bookkeeping log keeps its volatile chunk descriptors
 * (vchunks) in a red–black tree ordered by chunk id (paper §5.3,
 * Fig. 8), and the large allocator orders free extents by size for
 * best-fit. Both need an ordered map whose nodes live inside objects
 * the allocator already owns — an allocator cannot allocate from
 * itself — hence an intrusive tree rather than std::map.
 *
 * Classic CLRS insert/erase fixup with a sentinel-free representation
 * (null children, explicit root). Duplicate keys are allowed and are
 * ordered arbitrarily among themselves; lowerBound() returns the first
 * node with key >= the probe.
 */

#ifndef NVALLOC_COMMON_RBTREE_H
#define NVALLOC_COMMON_RBTREE_H

#include <cstdint>

#include "common/logging.h"

namespace nvalloc {

/** Embed one of these per tree an object can live in. */
struct RbNode
{
    RbNode *parent = nullptr;
    RbNode *left = nullptr;
    RbNode *right = nullptr;
    bool red = false;
    uint64_t key = 0;

    bool linked() const { return parent != nullptr || red; }
};

/**
 * Intrusive red–black tree over objects of type T with an RbNode member
 * at byte offset `NodeOffset`. Keys are uint64_t, stored in the node.
 */
template <typename T, size_t NodeOffset>
class RbTree
{
  public:
    static RbNode *
    nodeOf(T *obj)
    {
        return reinterpret_cast<RbNode *>(
            reinterpret_cast<char *>(obj) + NodeOffset);
    }

    static T *
    objOf(RbNode *n)
    {
        return n ? reinterpret_cast<T *>(
                       reinterpret_cast<char *>(n) - NodeOffset)
                 : nullptr;
    }

    bool empty() const { return root_ == nullptr; }
    size_t size() const { return size_; }

    void
    insert(T *obj, uint64_t key)
    {
        RbNode *z = nodeOf(obj);
        z->key = key;
        z->left = z->right = nullptr;
        z->red = true;

        RbNode *y = nullptr;
        RbNode *x = root_;
        while (x) {
            y = x;
            x = (z->key < x->key) ? x->left : x->right;
        }
        z->parent = y;
        if (!y)
            root_ = z;
        else if (z->key < y->key)
            y->left = z;
        else
            y->right = z;
        insertFixup(z);
        ++size_;
    }

    void
    erase(T *obj)
    {
        RbNode *z = nodeOf(obj);
        RbNode *y = z;
        RbNode *x = nullptr;
        RbNode *x_parent = nullptr;
        bool y_was_red = y->red;

        if (!z->left) {
            x = z->right;
            x_parent = z->parent;
            transplant(z, z->right);
        } else if (!z->right) {
            x = z->left;
            x_parent = z->parent;
            transplant(z, z->left);
        } else {
            y = minimum(z->right);
            y_was_red = y->red;
            x = y->right;
            if (y->parent == z) {
                x_parent = y;
            } else {
                x_parent = y->parent;
                transplant(y, y->right);
                y->right = z->right;
                y->right->parent = y;
            }
            transplant(z, y);
            y->left = z->left;
            y->left->parent = y;
            y->red = z->red;
        }
        if (!y_was_red)
            eraseFixup(x, x_parent);
        z->parent = z->left = z->right = nullptr;
        z->red = false;
        --size_;
    }

    /** Any node with exactly this key, or nullptr. */
    T *
    find(uint64_t key) const
    {
        RbNode *x = root_;
        while (x) {
            if (key == x->key)
                return objOf(x);
            x = (key < x->key) ? x->left : x->right;
        }
        return nullptr;
    }

    /** First node with key >= probe, or nullptr. */
    T *
    lowerBound(uint64_t key) const
    {
        RbNode *x = root_;
        RbNode *best = nullptr;
        while (x) {
            if (x->key >= key) {
                best = x;
                x = x->left;
            } else {
                x = x->right;
            }
        }
        return objOf(best);
    }

    /** Last node with key <= probe, or nullptr. */
    T *
    upperBoundBelow(uint64_t key) const
    {
        RbNode *x = root_;
        RbNode *best = nullptr;
        while (x) {
            if (x->key <= key) {
                best = x;
                x = x->right;
            } else {
                x = x->left;
            }
        }
        return objOf(best);
    }

    T *
    first() const
    {
        return root_ ? objOf(minimum(root_)) : nullptr;
    }

    /** In-order successor, or nullptr at the end. */
    T *
    next(T *obj) const
    {
        RbNode *x = nodeOf(obj);
        if (x->right)
            return objOf(minimum(x->right));
        RbNode *y = x->parent;
        while (y && x == y->right) {
            x = y;
            y = y->parent;
        }
        return objOf(y);
    }

    /** Validate red–black invariants; test hook. Returns black height. */
    int
    checkInvariants() const
    {
        NV_ASSERT(!root_ || !root_->red);
        return blackHeight(root_);
    }

  private:
    RbNode *root_ = nullptr;
    size_t size_ = 0;

    static RbNode *
    minimum(RbNode *x)
    {
        while (x->left)
            x = x->left;
        return x;
    }

    static bool isRed(RbNode *n) { return n && n->red; }

    void
    rotateLeft(RbNode *x)
    {
        RbNode *y = x->right;
        x->right = y->left;
        if (y->left)
            y->left->parent = x;
        y->parent = x->parent;
        if (!x->parent)
            root_ = y;
        else if (x == x->parent->left)
            x->parent->left = y;
        else
            x->parent->right = y;
        y->left = x;
        x->parent = y;
    }

    void
    rotateRight(RbNode *x)
    {
        RbNode *y = x->left;
        x->left = y->right;
        if (y->right)
            y->right->parent = x;
        y->parent = x->parent;
        if (!x->parent)
            root_ = y;
        else if (x == x->parent->right)
            x->parent->right = y;
        else
            x->parent->left = y;
        y->right = x;
        x->parent = y;
    }

    void
    transplant(RbNode *u, RbNode *v)
    {
        if (!u->parent)
            root_ = v;
        else if (u == u->parent->left)
            u->parent->left = v;
        else
            u->parent->right = v;
        if (v)
            v->parent = u->parent;
    }

    void
    insertFixup(RbNode *z)
    {
        while (isRed(z->parent)) {
            RbNode *gp = z->parent->parent;
            if (z->parent == gp->left) {
                RbNode *uncle = gp->right;
                if (isRed(uncle)) {
                    z->parent->red = false;
                    uncle->red = false;
                    gp->red = true;
                    z = gp;
                } else {
                    if (z == z->parent->right) {
                        z = z->parent;
                        rotateLeft(z);
                    }
                    z->parent->red = false;
                    gp->red = true;
                    rotateRight(gp);
                }
            } else {
                RbNode *uncle = gp->left;
                if (isRed(uncle)) {
                    z->parent->red = false;
                    uncle->red = false;
                    gp->red = true;
                    z = gp;
                } else {
                    if (z == z->parent->left) {
                        z = z->parent;
                        rotateRight(z);
                    }
                    z->parent->red = false;
                    gp->red = true;
                    rotateLeft(gp);
                }
            }
        }
        root_->red = false;
    }

    void
    eraseFixup(RbNode *x, RbNode *x_parent)
    {
        while (x != root_ && !isRed(x)) {
            if (x == x_parent->left) {
                RbNode *w = x_parent->right;
                if (isRed(w)) {
                    w->red = false;
                    x_parent->red = true;
                    rotateLeft(x_parent);
                    w = x_parent->right;
                }
                if (!isRed(w->left) && !isRed(w->right)) {
                    w->red = true;
                    x = x_parent;
                    x_parent = x->parent;
                } else {
                    if (!isRed(w->right)) {
                        if (w->left)
                            w->left->red = false;
                        w->red = true;
                        rotateRight(w);
                        w = x_parent->right;
                    }
                    w->red = x_parent->red;
                    x_parent->red = false;
                    if (w->right)
                        w->right->red = false;
                    rotateLeft(x_parent);
                    x = root_;
                    x_parent = nullptr;
                }
            } else {
                RbNode *w = x_parent->left;
                if (isRed(w)) {
                    w->red = false;
                    x_parent->red = true;
                    rotateRight(x_parent);
                    w = x_parent->left;
                }
                if (!isRed(w->right) && !isRed(w->left)) {
                    w->red = true;
                    x = x_parent;
                    x_parent = x->parent;
                } else {
                    if (!isRed(w->left)) {
                        if (w->right)
                            w->right->red = false;
                        w->red = true;
                        rotateLeft(w);
                        w = x_parent->left;
                    }
                    w->red = x_parent->red;
                    x_parent->red = false;
                    if (w->left)
                        w->left->red = false;
                    rotateRight(x_parent);
                    x = root_;
                    x_parent = nullptr;
                }
            }
        }
        if (x)
            x->red = false;
    }

    int
    blackHeight(RbNode *n) const
    {
        if (!n)
            return 1;
        NV_ASSERT(!(isRed(n) && (isRed(n->left) || isRed(n->right))));
        if (n->left)
            NV_ASSERT(n->left->key <= n->key && n->left->parent == n);
        if (n->right)
            NV_ASSERT(n->right->key >= n->key && n->right->parent == n);
        int lh = blackHeight(n->left);
        int rh = blackHeight(n->right);
        NV_ASSERT(lh == rh);
        return lh + (n->red ? 0 : 1);
    }
};

#define NVALLOC_RB_TREE(T, member) ::nvalloc::RbTree<T, offsetof(T, member)>

} // namespace nvalloc

#endif // NVALLOC_COMMON_RBTREE_H
