/**
 * @file
 * Word-level bitmap helpers shared by slab bitmaps, vslab copies, and
 * the bookkeeping log's vchunk bitmaps.
 */

#ifndef NVALLOC_COMMON_BITMAP_OPS_H
#define NVALLOC_COMMON_BITMAP_OPS_H

#include <bit>
#include <cstddef>
#include <cstdint>

namespace nvalloc {

inline void
bitmapSet(uint64_t *words, size_t bit)
{
    words[bit >> 6] |= (uint64_t{1} << (bit & 63));
}

inline void
bitmapClear(uint64_t *words, size_t bit)
{
    words[bit >> 6] &= ~(uint64_t{1} << (bit & 63));
}

inline bool
bitmapTest(const uint64_t *words, size_t bit)
{
    return (words[bit >> 6] >> (bit & 63)) & 1;
}

/** Number of 64-bit words needed to hold `bits` bits. */
constexpr size_t
bitmapWords(size_t bits)
{
    return (bits + 63) / 64;
}

/**
 * Find the first clear bit below `limit`, or `limit` if none.
 * Scans word-at-a-time with countr_one, so cost is O(words).
 */
inline size_t
bitmapFindFirstZero(const uint64_t *words, size_t limit)
{
    size_t nwords = bitmapWords(limit);
    for (size_t w = 0; w < nwords; ++w) {
        if (words[w] != ~uint64_t{0}) {
            size_t bit = w * 64 + std::countr_one(words[w]);
            return bit < limit ? bit : limit;
        }
    }
    return limit;
}

/** Count set bits below `limit`. */
inline size_t
bitmapPopcount(const uint64_t *words, size_t limit)
{
    size_t full = limit >> 6, count = 0;
    for (size_t w = 0; w < full; ++w)
        count += std::popcount(words[w]);
    if (limit & 63) {
        uint64_t mask = (uint64_t{1} << (limit & 63)) - 1;
        count += std::popcount(words[full] & mask);
    }
    return count;
}

} // namespace nvalloc

#endif // NVALLOC_COMMON_BITMAP_OPS_H
