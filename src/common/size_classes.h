/**
 * @file
 * Small-allocation size classes.
 *
 * NVAlloc serves requests below 16 KB from slabs segregated by size
 * class (paper §2.2). We use a jemalloc-style class table: linear 16 B
 * spacing up to 128 B, then four classes per power-of-two group. Every
 * class divides the 64 KB slab data area into fixed-size blocks.
 */

#ifndef NVALLOC_COMMON_SIZE_CLASSES_H
#define NVALLOC_COMMON_SIZE_CLASSES_H

#include <cstddef>
#include <cstdint>

namespace nvalloc {

/** Requests at or below this go through the small (slab) allocator. */
constexpr size_t kSmallMax = 16 * 1024;

/** Slab size used throughout the paper. */
constexpr size_t kSlabSize = 64 * 1024;

/** CPU cache line size assumed by the interleaving schemes. */
constexpr size_t kCacheLine = 64;

namespace detail {

constexpr size_t kSizeClassTable[] = {
    8,    16,   32,   48,   64,   80,   96,   112,  128,
    160,  192,  224,  256,
    320,  384,  448,  512,
    640,  768,  896,  1024,
    1280, 1536, 1792, 2048,
    2560, 3072, 3584, 4096,
    5120, 6144, 7168, 8192,
    10240, 12288, 14336, 16384,
};

} // namespace detail

constexpr unsigned kNumSizeClasses =
    sizeof(detail::kSizeClassTable) / sizeof(detail::kSizeClassTable[0]);

/** Block size of a size class. */
constexpr size_t
classToSize(unsigned cls)
{
    return detail::kSizeClassTable[cls];
}

/** Smallest class whose block size fits `size`. `size` must be
 *  in (0, kSmallMax]. */
constexpr unsigned
sizeToClass(size_t size)
{
    // The table is tiny and this is off the hot path (tcache lookups
    // cache the class); a linear scan keeps it constexpr-friendly.
    for (unsigned c = 0; c < kNumSizeClasses; ++c) {
        if (detail::kSizeClassTable[c] >= size)
            return c;
    }
    return kNumSizeClasses; // unreachable for valid input
}

static_assert(classToSize(kNumSizeClasses - 1) == kSmallMax,
              "largest small class must equal the small threshold");
static_assert(sizeToClass(1) == 0 && sizeToClass(8) == 0 &&
              sizeToClass(9) == 1, "class lookup sanity");

} // namespace nvalloc

#endif // NVALLOC_COMMON_SIZE_CLASSES_H
