/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture the state.
 * fatal()  — the caller asked for something impossible (bad config,
 *            exhausted heap); exits with an error code.
 * warn()/inform() — non-fatal status messages.
 */

#ifndef NVALLOC_COMMON_LOGGING_H
#define NVALLOC_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>

namespace nvalloc {

[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

} // namespace nvalloc

#define NV_PANIC(msg) ::nvalloc::panicImpl(__FILE__, __LINE__, (msg))
#define NV_FATAL(msg) ::nvalloc::fatalImpl(__FILE__, __LINE__, (msg))

/** Assert an internal invariant; active in all build types. */
#define NV_ASSERT(cond)                                                     \
    do {                                                                    \
        if (!(cond))                                                        \
            NV_PANIC("assertion failed: " #cond);                           \
    } while (0)

#define NV_WARN(msg)  std::fprintf(stderr, "warn: %s\n", (msg))
#define NV_INFORM(msg) std::fprintf(stderr, "info: %s\n", (msg))

#endif // NVALLOC_COMMON_LOGGING_H
