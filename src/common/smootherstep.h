/**
 * @file
 * Smootherstep decay curve used by the large allocator.
 *
 * jemalloc's decay mechanism bounds the amount of dirty (reclaimed /
 * retained) memory by a curve that decays from 1 to 0 over the decay
 * window; NVAlloc reuses the same parameters (paper §2.2). The curve is
 * Perlin's smootherstep: 6t^5 - 15t^4 + 10t^3, evaluated on the
 * *remaining* fraction of the window.
 */

#ifndef NVALLOC_COMMON_SMOOTHERSTEP_H
#define NVALLOC_COMMON_SMOOTHERSTEP_H

namespace nvalloc {

/** Classic smootherstep on t in [0, 1]; clamps outside the interval. */
inline double
smootherstep(double t)
{
    if (t <= 0.0)
        return 0.0;
    if (t >= 1.0)
        return 1.0;
    return t * t * t * (t * (t * 6.0 - 15.0) + 10.0);
}

/**
 * Fraction of the initially-dirty memory a decaying list may still hold
 * when `elapsed` of the `window` has passed. Starts at 1, ends at 0.
 */
inline double
decayLimitFraction(double elapsed, double window)
{
    if (window <= 0.0)
        return 0.0;
    return 1.0 - smootherstep(elapsed / window);
}

} // namespace nvalloc

#endif // NVALLOC_COMMON_SMOOTHERSTEP_H
