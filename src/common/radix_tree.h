/**
 * @file
 * Radix tree keyed by heap offsets.
 *
 * The paper's small and large allocators both consult an "R-tree" in
 * DRAM to map an address to its owning structure: a freed block's
 * address to its slab (and so to its size class, §4.2), and an extent
 * boundary to its virtual extent header for split/coalesce (§4.3). In
 * jemalloc this is the rtree — a radix tree over page numbers — and we
 * implement the same thing: a three-level radix tree over 4 KB-aligned
 * heap offsets covering a 48-bit space.
 *
 * Leaves store an opaque pointer per page. Interior nodes are
 * installed with compare-and-swap and never freed until clear(), so
 * lookups are lock-free and safe against concurrent insertions; the
 * caller is responsible for the lifetime of the *values* (see the
 * arena's graveyard).
 */

#ifndef NVALLOC_COMMON_RADIX_TREE_H
#define NVALLOC_COMMON_RADIX_TREE_H

#include <atomic>
#include <cstdint>

#include "common/logging.h"

namespace nvalloc {

class RadixTree
{
  public:
    static constexpr unsigned kPageShift = 12;   // 4 KB granule
    static constexpr unsigned kLevelBits = 12;   // 4096-way fanout
    static constexpr unsigned kLevels = 3;       // 36 key bits total

    RadixTree()
    {
        for (auto &slot : root_)
            slot.store(nullptr, std::memory_order_relaxed);
    }

    ~RadixTree() { clear(); }

    RadixTree(const RadixTree &) = delete;
    RadixTree &operator=(const RadixTree &) = delete;

    /** Map the page containing `offset` to `value` (nullptr erases). */
    void
    set(uint64_t offset, void *value)
    {
        uint64_t key = offset >> kPageShift;
        NV_ASSERT(key < (uint64_t{1} << (kLevelBits * kLevels)));
        descend(key)->store(value, std::memory_order_release);
    }

    /** Map every page in [offset, offset + len) to `value`. */
    void
    setRange(uint64_t offset, uint64_t len, void *value)
    {
        if (len == 0)
            return;
        uint64_t first = offset >> kPageShift;
        uint64_t last = (offset + len - 1) >> kPageShift;
        for (uint64_t page = first; page <= last; ++page)
            descend(page)->store(value, std::memory_order_release);
    }

    /** Value for the page containing `offset`, or nullptr. */
    void *
    get(uint64_t offset) const
    {
        uint64_t key = offset >> kPageShift;
        const std::atomic<void *> *slot = &root_[indexAt(key, 0)];
        for (unsigned level = 1; level < kLevels; ++level) {
            Node *n = static_cast<Node *>(
                slot->load(std::memory_order_acquire));
            if (!n)
                return nullptr;
            slot = &n->slots[indexAt(key, level)];
        }
        return slot->load(std::memory_order_acquire);
    }

    /** Drop all mappings and free interior nodes. Not safe against
     *  concurrent access. */
    void
    clear()
    {
        for (auto &slot : root_) {
            void *child = slot.load(std::memory_order_relaxed);
            if (child)
                freeNode(static_cast<Node *>(child), 1);
            slot.store(nullptr, std::memory_order_relaxed);
        }
    }

  private:
    static constexpr size_t kFanout = size_t{1} << kLevelBits;

    struct Node
    {
        std::atomic<void *> slots[kFanout];

        Node()
        {
            for (auto &s : slots)
                s.store(nullptr, std::memory_order_relaxed);
        }
    };

    std::atomic<void *> root_[kFanout];

    static unsigned
    indexAt(uint64_t key, unsigned level)
    {
        unsigned shift = (kLevels - 1 - level) * kLevelBits;
        return (key >> shift) & (kFanout - 1);
    }

    std::atomic<void *> *
    descend(uint64_t key)
    {
        std::atomic<void *> *slot = &root_[indexAt(key, 0)];
        for (unsigned level = 1; level < kLevels; ++level) {
            void *child = slot->load(std::memory_order_acquire);
            if (!child) {
                Node *fresh = new Node;
                if (slot->compare_exchange_strong(
                        child, fresh, std::memory_order_acq_rel)) {
                    child = fresh;
                } else {
                    delete fresh; // another writer won the race
                }
            }
            slot = &static_cast<Node *>(child)->slots[indexAt(key, level)];
        }
        return slot;
    }

    void
    freeNode(Node *n, unsigned level)
    {
        if (level + 1 < kLevels) {
            for (auto &child : n->slots) {
                void *c = child.load(std::memory_order_relaxed);
                if (c)
                    freeNode(static_cast<Node *>(c), level + 1);
            }
        }
        delete n;
    }
};

} // namespace nvalloc

#endif // NVALLOC_COMMON_RADIX_TREE_H
