#include "kv/kv_c.h"

#include <cstring>
#include <string_view>

#include "kv/kv_store.h"

namespace nvalloc {

struct NvKv
{
    NvInstance *inst = nullptr;
    std::unique_ptr<KvStore> store;
};

namespace {

int
mapKvStatus(KvStatus s)
{
    switch (s) {
    case KvStatus::Ok: return NVALLOC_OK;
    case KvStatus::NotFound: return NVALLOC_ENOENT;
    case KvStatus::Corrupt: return NVALLOC_ECORRUPT;
    case KvStatus::OutOfMemory:
    case KvStatus::QuotaExceeded: return NVALLOC_ENOMEM;
    // The tenant's health machine already refused the op; per the
    // containment contract this is a caller error (EINVAL), unlike
    // nvalloc_errno's ECORRUPT which reports the *detection*.
    case KvStatus::HeapUnhealthy: return NVALLOC_EINVAL;
    case KvStatus::TooLarge:
    case KvStatus::Invalid: return NVALLOC_EINVAL;
    }
    return NVALLOC_EINVAL;
}

} // namespace

int
nvalloc_kv_open(PmDevice *dev, const char *name,
                const nvalloc_options *opts, uint64_t buckets,
                NvKv **out)
{
    if (!dev || !name || !out)
        return NVALLOC_EINVAL;
    nvalloc_options defaults;
    if (!opts) {
        nvalloc_options_init(&defaults);
        opts = &defaults;
    }
    NvInstance *inst = nullptr;
    int rc = nvalloc_open_named(dev, name, opts, &inst);
    if (rc != NVALLOC_OK)
        return rc;
    KvOptions ko;
    if (buckets)
        ko.buckets = buckets;
    KvStatus why = KvStatus::Ok;
    auto store = KvStore::open(*nvalloc_impl(inst), ko, &why);
    if (!store) {
        nvalloc_exit(inst);
        return mapKvStatus(why);
    }
    NvKv *kv = new NvKv;
    kv->inst = inst;
    kv->store = std::move(store);
    *out = kv;
    return NVALLOC_OK;
}

void
nvalloc_kv_close(NvKv *kv)
{
    if (!kv)
        return;
    kv->store.reset(); // detaches stats before the instance drops
    nvalloc_exit(kv->inst);
    delete kv;
}

int
nvalloc_kv_put(NvKv *kv, const void *key, size_t key_len,
               const void *value, size_t value_len)
{
    if (!kv || !key || (!value && value_len))
        return NVALLOC_EINVAL;
    ThreadCtx *ctx = nvalloc_thread(kv->inst);
    if (!ctx)
        return NVALLOC_EAGAIN;
    return mapKvStatus(kv->store->put(
        *ctx,
        std::string_view(static_cast<const char *>(key), key_len),
        std::string_view(static_cast<const char *>(value),
                         value_len)));
}

int
nvalloc_kv_get(NvKv *kv, const void *key, size_t key_len, void *buf,
               size_t cap, size_t *len)
{
    if (!kv || !key)
        return NVALLOC_EINVAL;
    std::string value;
    KvStatus s = kv->store->get(
        std::string_view(static_cast<const char *>(key), key_len),
        &value);
    if (s != KvStatus::Ok)
        return mapKvStatus(s);
    if (len)
        *len = value.size();
    if (buf && cap)
        std::memcpy(buf, value.data(),
                    value.size() < cap ? value.size() : cap);
    return NVALLOC_OK;
}

int
nvalloc_kv_erase(NvKv *kv, const void *key, size_t key_len)
{
    if (!kv || !key)
        return NVALLOC_EINVAL;
    ThreadCtx *ctx = nvalloc_thread(kv->inst);
    if (!ctx)
        return NVALLOC_EAGAIN;
    return mapKvStatus(kv->store->erase(
        *ctx,
        std::string_view(static_cast<const char *>(key), key_len)));
}

uint64_t
nvalloc_kv_count(NvKv *kv)
{
    return kv ? kv->store->count() : 0;
}

NvInstance *
nvalloc_kv_instance(NvKv *kv)
{
    return kv ? kv->inst : nullptr;
}

} // namespace nvalloc
