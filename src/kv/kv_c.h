/**
 * @file
 * C veneer over KvStore, in the style of nvalloc_c.h.
 *
 * Opens go through nvalloc_open_named, so a KV store is always a
 * *pool tenant*: it gets its own fault-containment domain, capacity
 * quota and health state, and `name` follows the pool's config-
 * identity contract (same name + same options = shared instance).
 *
 * Error mapping (returned by every call, errno style):
 *  - NVALLOC_OK          success
 *  - NVALLOC_ENOENT      key not found (get/erase) — KV extension code
 *  - NVALLOC_EINVAL      bad argument, too-large key/value, or an op
 *                        on a degraded/quarantined tenant
 *                        (KvStatus::HeapUnhealthy: the heap already
 *                        refused the op; calling again is a caller
 *                        error, not new corruption)
 *  - NVALLOC_ENOMEM      heap exhausted or tenant quota exceeded
 *                        (distinguish via nvalloc_errno on the
 *                        instance: NvStatus QuotaExceeded)
 *  - NVALLOC_ECORRUPT    record/index failed validation (contained)
 *  - NVALLOC_EAGAIN      no WAL slot for this thread
 */

#ifndef NVALLOC_KV_KV_C_H
#define NVALLOC_KV_KV_C_H

#include <cstddef>
#include <cstdint>

#include "nvalloc/nvalloc_c.h"

namespace nvalloc {

struct NvKv; //!< opaque

/** KV-specific errno extension, disjoint from the NvErrno values. */
enum NvKvErrno
{
    NVALLOC_ENOENT = 16, //!< key not found
};

/**
 * Open (or create) the KV store of pool tenant `name` on `dev`,
 * anchored at the tenant heap's root word 0. `opts` may be null for
 * defaults (as nvalloc_open_named; fault containment is always forced
 * for tenants). `buckets` is rounded up to a power of two; it only
 * applies on creation — reopening an existing store keeps its
 * persistent geometry.
 *
 * Returns NVALLOC_OK with *out set, or an error with *out untouched
 * (an unhealthy or corrupt tenant image surfaces here as the open
 * error, and the instance reference is released again).
 */
int nvalloc_kv_open(PmDevice *dev, const char *name,
                    const nvalloc_options *opts, uint64_t buckets,
                    NvKv **out);

/** Release the store and its pool-instance reference. Null is ok. */
void nvalloc_kv_close(NvKv *kv);

int nvalloc_kv_put(NvKv *kv, const void *key, size_t key_len,
                   const void *value, size_t value_len);

/**
 * Lookup: copies up to `cap` value bytes into `buf` and stores the
 * full value length in *len (when non-null). `buf` may be null to
 * probe the size. Returns NVALLOC_ENOENT when absent.
 */
int nvalloc_kv_get(NvKv *kv, const void *key, size_t key_len,
                   void *buf, size_t cap, size_t *len);

int nvalloc_kv_erase(NvKv *kv, const void *key, size_t key_len);

uint64_t nvalloc_kv_count(NvKv *kv);

/** The backing pool instance (for nvalloc_ctl / nvalloc_health /
 *  nvalloc_errno); owned by the store — do not nvalloc_exit it. */
NvInstance *nvalloc_kv_instance(NvKv *kv);

} // namespace nvalloc

#endif // NVALLOC_KV_KV_C_H
