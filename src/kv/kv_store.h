/**
 * @file
 * Crash-recoverable key-value store on NvAlloc (DESIGN.md §13).
 *
 * The persistent format is a chained hash table whose every mutation
 * rides the allocator's transaction layer (tx.h), so each insert,
 * update and erase is all-or-nothing across {record block, index
 * slot}:
 *
 *   rootWord(root_index) ──► KvSuper ──► bucket table (2^shift words)
 *                                             │
 *                                bucket[b] ──► record ─► record ─► 0
 *
 * A record is one allocator block: a 24-byte header (chain link,
 * lengths, CRC-32C over lengths+key+value) followed by the key and
 * value bytes. Small records come from slabs, large values from
 * extents — the allocator's size-class machinery decides, which is
 * exactly the small+large mix the paper's workloads stress.
 *
 * Concurrency: the bucket array is striped over VLocks; *readers take
 * the stripe lock too*. That is deliberate — an erase frees the record
 * into the hardening quarantine at commit, so a lock-free reader could
 * hold a pointer into poison-filled memory and trip the quarantine's
 * use-after-free detector with a false positive. With readers
 * excluded for the (virtual-time-modelled) critical section, a freed
 * record is unreachable before it is ever poisoned.
 *
 * Nothing volatile is required for correctness: open() walks every
 * chain once to rebuild the cached index (per-bucket chain lengths and
 * the record/byte gauges) and to validate headers and checksums, and
 * the tx layer has already resolved any in-flight mutation
 * all-or-nothing before the walk starts.
 */

#ifndef NVALLOC_KV_KV_STORE_H
#define NVALLOC_KV_KV_STORE_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "nvalloc/kv_stats.h"
#include "nvalloc/nvalloc.h"
#include "nvalloc/vlock.h"

namespace nvalloc {

/** KV operation outcome. Maps onto the C veneer's errno family in
 *  kv_c.h; HeapUnhealthy deliberately surfaces as EINVAL there (an op
 *  on a quarantined tenant is a caller error, not new corruption). */
enum class KvStatus : uint8_t
{
    Ok = 0,
    NotFound,      //!< key absent (get/erase/rmw)
    Corrupt,       //!< record or index failed validation; contained
    OutOfMemory,   //!< txAlloc failed (heap exhausted)
    QuotaExceeded, //!< txAlloc refused by the tenant's capacity quota
    HeapUnhealthy, //!< backing heap degraded/quarantined; op refused
    TooLarge,      //!< key or value exceeds the format limits
    Invalid,       //!< bad argument, or heap without a tx layer (GC)
};

const char *kvStatusName(KvStatus s);

struct KvOptions
{
    /** Bucket count; rounded up to a power of two. */
    uint64_t buckets = uint64_t{1} << 16;
    /** Which NvAlloc root word anchors the store. */
    unsigned root_index = 0;
    /** Create a fresh store when the root word is empty. */
    bool create = true;
};

class KvStore
{
  public:
    static constexpr size_t kMaxKeyLen = 1024;
    static constexpr size_t kMaxValueLen = size_t{4} << 20;
    /** Bytes before the key: next(8) + vlen(4) + klen(2) + flags(2) +
     *  crc(4) + pad(4). */
    static constexpr size_t kRecordHeader = 24;

    /**
     * Open (attach or create) the store anchored at
     * heap.rootWord(opt.root_index). Returns null on failure with
     * *why (when given) set to: Invalid (GC-variant heap — the store
     * requires the tx layer — or root word in use by something that
     * fails super validation), Corrupt (super block unreadable),
     * NotFound (empty root and !opt.create), OutOfMemory /
     * QuotaExceeded / HeapUnhealthy (creation tx failed).
     *
     * On success the store's KvStats block is attached to the heap
     * (stats.kv.* ctl subtree) until destruction.
     */
    static std::unique_ptr<KvStore> open(NvAlloc &heap,
                                         const KvOptions &opt = {},
                                         KvStatus *why = nullptr);

    ~KvStore();

    KvStore(const KvStore &) = delete;
    KvStore &operator=(const KvStore &) = delete;

    // ---- operations -------------------------------------------------

    /** Insert or replace. A replace frees the old record (through the
     *  delayed-reuse quarantine), unlinks it and links the new record
     *  at the bucket head — all in one transaction. */
    KvStatus put(ThreadCtx &ctx, std::string_view key,
                 std::string_view value);

    /** Point lookup. Validates the matched record's checksum; a
     *  mismatch returns Corrupt (counted, sibling keys unaffected). */
    KvStatus get(std::string_view key, std::string *out);

    KvStatus erase(ThreadCtx &ctx, std::string_view key);

    /**
     * Read-modify-write under the bucket lock: fn(old) -> new value,
     * where old is the current value ("" when absent — absent keys are
     * upserted, matching YCSB F). fn runs with the stripe lock held;
     * it must not reenter the store.
     */
    KvStatus rmw(ThreadCtx &ctx, std::string_view key,
                 const std::function<std::string(std::string_view)> &fn);

    /**
     * Hash-order scan: collect up to `n` records walking buckets
     * cyclically from start_key's bucket. Hash tables have no key
     * order, so like every KV-on-hash YCSB port this approximates
     * range scans by bucket adjacency (documented in DESIGN.md §13).
     * Corrupt records are counted and skipped, never returned.
     */
    KvStatus scan(std::string_view start_key, unsigned n,
                  std::vector<std::pair<std::string, std::string>> *out);

    /** Full-store walk validating every record checksum; Ok or
     *  Corrupt. The fsck analogue for the KV layer. */
    KvStatus verify();

    // ---- introspection ----------------------------------------------

    uint64_t count() const;
    uint64_t buckets() const { return buckets_; }
    NvAlloc &heap() { return heap_; }
    const KvStats &stats() const { return stats_; }
    /** Longest current chain (volatile index; racy snapshot). */
    uint64_t maxChain() const;
    std::string json() const;

    /** Device offset of key's record (0 if absent / invalid): the
     *  chaos harness uses it to aim corruption at live payload. */
    uint64_t recordOffset(std::string_view key);

    /** Device offset of key's bucket head word (chaos hook: the
     *  kv-stomp class smashes it and expects containment). */
    uint64_t
    bucketWordOffset(std::string_view key) const
    {
        return table_off_ + bucketOf(key) * 8;
    }

  private:
    struct FindResult
    {
        uint64_t off = 0;          //!< matching record, 0 if absent
        uint64_t *pred_link = nullptr; //!< word holding `off`
        bool corrupt = false;      //!< chain walk hit a bad record
    };

    KvStore(NvAlloc &heap, unsigned root_index);

    KvStatus create(const KvOptions &opt);
    KvStatus attach(uint64_t super_off);
    KvStatus rebuild();

    uint64_t bucketOf(std::string_view key) const;
    VLock &stripeOf(uint64_t bucket);
    uint64_t *bucketWord(uint64_t bucket);

    /** Header/bounds sanity for a chain offset; does not touch the
     *  checksum (that costs a payload walk and is done on match). */
    bool recordSane(uint64_t off) const;
    bool recordCrcOk(uint64_t off) const;
    static uint32_t recordCrc(uint16_t klen, uint32_t vlen,
                              std::string_view key,
                              std::string_view value);

    FindResult findLocked(uint64_t bucket, std::string_view key);
    KvStatus putLocked(ThreadCtx &ctx, uint64_t bucket,
                       std::string_view key, std::string_view value);
    KvStatus refuse();
    KvStatus mapAllocFailure();

    NvAlloc &heap_;
    const unsigned root_index_;
    uint64_t table_off_ = 0;
    uint64_t buckets_ = 0;
    uint64_t bucket_mask_ = 0;

    static constexpr unsigned kStripes = 64;
    std::vector<VLock> stripes_{kStripes};
    /** Volatile cached index: per-bucket chain length, rebuilt on
     *  open, maintained under the stripe locks. */
    std::vector<uint32_t> chain_len_;

    KvStats stats_;
};

} // namespace nvalloc

#endif // NVALLOC_KV_KV_STORE_H
