#include "kv/kv_store.h"

#include <cstddef>
#include <cstdio>
#include <cstring>

#include "common/checksum.h"
#include "pm/pm_device.h"

namespace nvalloc {

namespace {

constexpr uint64_t kKvMagic = 0x31564b564c4c414eULL; // "NALLVKV1"
constexpr uint32_t kKvVersion = 1;
/** Chain-walk step bound: a corrupted next link forming a cycle must
 *  terminate the walk as a detection, not a hang. */
constexpr uint64_t kMaxChainSteps = uint64_t{1} << 20;

/** On-device store anchor, reached from rootWord(root_index). The crc
 *  covers every field above it so a torn or stomped super reads as
 *  Corrupt instead of as a wild bucket table. */
struct KvSuper
{
    uint64_t magic;
    uint32_t version;
    uint32_t bucket_shift;
    uint64_t table_off;
    uint32_t crc;
    uint32_t pad;
};
static_assert(sizeof(KvSuper) == 32, "super layout is persistent ABI");

/** Record header; key bytes then value bytes follow. `next` is
 *  excluded from the crc on purpose: unlinking a *successor* rewrites
 *  it via txWrite, and re-checksumming a neighbour inside that tx
 *  would turn every erase into a rewrite of the whole chain. */
struct RecordHeader
{
    uint64_t next;
    uint32_t vlen;
    uint16_t klen;
    uint16_t flags;
    uint32_t crc;
    uint32_t pad;
};
static_assert(sizeof(RecordHeader) == KvStore::kRecordHeader,
              "record layout is persistent ABI");

uint32_t
superCrc(const KvSuper &s)
{
    return crc32(&s, offsetof(KvSuper, crc));
}

/** FNV-1a; stable across runs so bucket placement is part of the
 *  persistent format's contract. */
uint64_t
hashKey(std::string_view key)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

void
bump(std::atomic<uint64_t> &a, uint64_t n = 1)
{
    a.fetch_add(n, std::memory_order_relaxed);
}

void
drop(std::atomic<uint64_t> &a, uint64_t n = 1)
{
    a.fetch_sub(n, std::memory_order_relaxed);
}

/** Scoped attach for the creation transaction: open() has no caller
 *  ThreadCtx, every later op does. */
struct ScopedThread
{
    NvAlloc &heap;
    ThreadCtx *ctx;
    explicit ScopedThread(NvAlloc &h) : heap(h), ctx(h.attachThread())
    {
    }
    ~ScopedThread()
    {
        if (ctx)
            heap.detachThread(ctx);
    }
};

} // namespace

const char *
kvStatusName(KvStatus s)
{
    switch (s) {
    case KvStatus::Ok: return "ok";
    case KvStatus::NotFound: return "not-found";
    case KvStatus::Corrupt: return "corrupt";
    case KvStatus::OutOfMemory: return "out-of-memory";
    case KvStatus::QuotaExceeded: return "quota-exceeded";
    case KvStatus::HeapUnhealthy: return "heap-unhealthy";
    case KvStatus::TooLarge: return "too-large";
    case KvStatus::Invalid: return "invalid";
    }
    return "?";
}

KvStore::KvStore(NvAlloc &heap, unsigned root_index)
    : heap_(heap), root_index_(root_index)
{
}

KvStore::~KvStore()
{
    heap_.detachKvStats(&stats_);
}

std::unique_ptr<KvStore>
KvStore::open(NvAlloc &heap, const KvOptions &opt, KvStatus *why)
{
    auto fail = [why](KvStatus s) {
        if (why)
            *why = s;
        return std::unique_ptr<KvStore>();
    };
    // The store *is* the tx layer's application: every mutation must
    // be journaled, so the GC variant (which has no WAL) cannot host
    // one.
    if (heap.config().consistency != Consistency::Log)
        return fail(KvStatus::Invalid);
    if (opt.root_index >= kNumGcRoots)
        return fail(KvStatus::Invalid);

    std::unique_ptr<KvStore> store(new KvStore(heap, opt.root_index));
    uint64_t root = *heap.rootWord(opt.root_index);
    KvStatus s;
    if (root == 0) {
        if (!opt.create)
            return fail(KvStatus::NotFound);
        s = store->create(opt);
    } else {
        s = store->attach(root);
    }
    if (s != KvStatus::Ok)
        return fail(s);
    store->stats_.buckets.store(store->buckets_,
                                std::memory_order_relaxed);
    heap.attachKvStats(&store->stats_);
    if (why)
        *why = KvStatus::Ok;
    return store;
}

KvStatus
KvStore::create(const KvOptions &opt)
{
    uint32_t shift = 4;
    while ((uint64_t{1} << shift) < opt.buckets && shift < 28)
        ++shift;
    buckets_ = uint64_t{1} << shift;
    bucket_mask_ = buckets_ - 1;

    ScopedThread t(heap_);
    if (!t.ctx)
        return KvStatus::Invalid;
    NvStatus s = heap_.txBegin(*t.ctx);
    if (s == NvStatus::HeapUnhealthy) {
        bump(stats_.rejected_unhealthy);
        return KvStatus::HeapUnhealthy;
    }
    if (s != NvStatus::Ok)
        return KvStatus::Invalid;

    // One tx creates the whole store: bucket table + super, the super
    // published into the root word at commit. A crash anywhere leaves
    // either no store (rolled back) or a complete empty one.
    uint64_t table = heap_.txAlloc(*t.ctx, buckets_ * 8, nullptr);
    if (!table) {
        KvStatus r = mapAllocFailure();
        heap_.txAbort(*t.ctx);
        return r;
    }
    std::memset(heap_.at(table), 0, buckets_ * 8);
    heap_.device().persist(heap_.at(table), buckets_ * 8,
                           TimeKind::FlushData);

    uint64_t soff = heap_.txAlloc(*t.ctx, sizeof(KvSuper),
                                  heap_.rootWord(root_index_));
    if (!soff) {
        KvStatus r = mapAllocFailure();
        heap_.txAbort(*t.ctx);
        return r;
    }
    KvSuper *sup = static_cast<KvSuper *>(heap_.at(soff));
    sup->magic = kKvMagic;
    sup->version = kKvVersion;
    sup->bucket_shift = shift;
    sup->table_off = table;
    sup->pad = 0;
    sup->crc = superCrc(*sup);
    heap_.device().persist(sup, sizeof(*sup), TimeKind::FlushData);

    if (heap_.txCommit(*t.ctx) != NvStatus::Ok)
        return KvStatus::Invalid;
    table_off_ = table;
    chain_len_.assign(size_t(buckets_), 0);
    return KvStatus::Ok;
}

KvStatus
KvStore::attach(uint64_t super_off)
{
    PmDevice &dev = heap_.device();
    if (super_off + sizeof(KvSuper) > dev.size() || (super_off & 7))
        return KvStatus::Corrupt;
    const KvSuper *sup =
        static_cast<const KvSuper *>(heap_.at(super_off));
    if (sup->magic != kKvMagic || sup->version != kKvVersion ||
        sup->crc != superCrc(*sup))
        return KvStatus::Corrupt;
    if (sup->bucket_shift < 1 || sup->bucket_shift > 28)
        return KvStatus::Corrupt;
    buckets_ = uint64_t{1} << sup->bucket_shift;
    bucket_mask_ = buckets_ - 1;
    if (sup->table_off + buckets_ * 8 > dev.size() ||
        (sup->table_off & 7))
        return KvStatus::Corrupt;
    table_off_ = sup->table_off;
    return rebuild();
}

KvStatus
KvStore::rebuild()
{
    // Open-time index rebuild: one pass over every chain re-derives
    // the volatile cached index (chain lengths, record/byte gauges)
    // and validates each record. The tx layer has already resolved
    // in-flight mutations before this runs, so the walk sees only
    // committed state.
    bump(stats_.rebuilds);
    chain_len_.assign(size_t(buckets_), 0);
    uint64_t recs = 0, kb = 0, vb = 0;
    for (uint64_t b = 0; b < buckets_; ++b) {
        uint64_t off = bucketWord(b)[0];
        uint64_t steps = 0;
        while (off) {
            if (++steps > kMaxChainSteps || !recordSane(off)) {
                bump(stats_.corrupt_records);
                break;
            }
            const RecordHeader *h =
                static_cast<const RecordHeader *>(heap_.at(off));
            if (!recordCrcOk(off))
                bump(stats_.corrupt_records);
            ++recs;
            kb += h->klen;
            vb += h->vlen;
            ++chain_len_[size_t(b)];
            off = h->next;
        }
    }
    stats_.records.store(recs, std::memory_order_relaxed);
    stats_.key_bytes.store(kb, std::memory_order_relaxed);
    stats_.value_bytes.store(vb, std::memory_order_relaxed);
    bump(stats_.rebuilt_records, recs);
    return KvStatus::Ok;
}

uint64_t
KvStore::bucketOf(std::string_view key) const
{
    return hashKey(key) & bucket_mask_;
}

VLock &
KvStore::stripeOf(uint64_t bucket)
{
    return stripes_[size_t(bucket) % kStripes];
}

uint64_t *
KvStore::bucketWord(uint64_t bucket)
{
    return static_cast<uint64_t *>(heap_.at(table_off_ + bucket * 8));
}

bool
KvStore::recordSane(uint64_t off) const
{
    const PmDevice &dev = heap_.device();
    if (off < 64 || (off & 7) || off + kRecordHeader > dev.size())
        return false;
    const RecordHeader *h =
        static_cast<const RecordHeader *>(heap_.at(off));
    if (h->klen == 0 || h->klen > kMaxKeyLen ||
        h->vlen > kMaxValueLen || h->flags != 0)
        return false;
    return off + kRecordHeader + h->klen + h->vlen <= dev.size();
}

uint32_t
KvStore::recordCrc(uint16_t klen, uint32_t vlen, std::string_view key,
                   std::string_view value)
{
    uint32_t c = crc32(&klen, sizeof(klen));
    c ^= crc32(&vlen, sizeof(vlen));
    c ^= crc32(key.data(), key.size());
    return c ^ crc32(value.data(), value.size());
}

bool
KvStore::recordCrcOk(uint64_t off) const
{
    const RecordHeader *h =
        static_cast<const RecordHeader *>(heap_.at(off));
    const char *bytes =
        static_cast<const char *>(heap_.at(off + kRecordHeader));
    return h->crc == recordCrc(h->klen, h->vlen,
                               std::string_view(bytes, h->klen),
                               std::string_view(bytes + h->klen,
                                                h->vlen));
}

KvStore::FindResult
KvStore::findLocked(uint64_t bucket, std::string_view key)
{
    FindResult r;
    uint64_t *link = bucketWord(bucket);
    uint64_t steps = 0;
    while (*link) {
        uint64_t off = *link;
        if (++steps > kMaxChainSteps || !recordSane(off)) {
            bump(stats_.corrupt_records);
            r.corrupt = true;
            return r;
        }
        RecordHeader *h = static_cast<RecordHeader *>(heap_.at(off));
        const char *bytes =
            static_cast<const char *>(heap_.at(off + kRecordHeader));
        if (h->klen == key.size() &&
            std::memcmp(bytes, key.data(), key.size()) == 0) {
            r.off = off;
            r.pred_link = link;
            return r;
        }
        link = &h->next;
    }
    r.pred_link = link;
    return r;
}

KvStatus
KvStore::refuse()
{
    if (heap_.config().fault_containment &&
        unsigned(heap_.health()) >= unsigned(HeapHealth::Degraded)) {
        bump(stats_.rejected_unhealthy);
        return KvStatus::HeapUnhealthy;
    }
    return KvStatus::Ok;
}

KvStatus
KvStore::mapAllocFailure()
{
    if (heap_.lastStatus() == NvStatus::QuotaExceeded) {
        bump(stats_.rejected_quota);
        return KvStatus::QuotaExceeded;
    }
    bump(stats_.failed_allocs);
    return KvStatus::OutOfMemory;
}

KvStatus
KvStore::put(ThreadCtx &ctx, std::string_view key,
             std::string_view value)
{
    if (key.empty())
        return KvStatus::Invalid;
    if (key.size() > kMaxKeyLen || value.size() > kMaxValueLen)
        return KvStatus::TooLarge;
    if (KvStatus r = refuse(); r != KvStatus::Ok)
        return r;
    uint64_t b = bucketOf(key);
    VLockGuard g(stripeOf(b));
    return putLocked(ctx, b, key, value);
}

KvStatus
KvStore::putLocked(ThreadCtx &ctx, uint64_t b, std::string_view key,
                   std::string_view value)
{
    FindResult f = findLocked(b, key);
    if (f.corrupt)
        return KvStatus::Corrupt;

    NvStatus s = heap_.txBegin(ctx);
    if (s == NvStatus::HeapUnhealthy) {
        bump(stats_.rejected_unhealthy);
        return KvStatus::HeapUnhealthy;
    }
    if (s != NvStatus::Ok)
        return KvStatus::Invalid;

    uint32_t old_vlen = 0;
    if (f.off) {
        // Replace = free old + unlink + link new, one transaction.
        // The free is journaled now but applied at commit, where it
        // routes through the hardening quarantine (delayed reuse).
        RecordHeader *oh = static_cast<RecordHeader *>(heap_.at(f.off));
        old_vlen = oh->vlen;
        if (heap_.txFree(ctx, f.off) != NvStatus::Ok ||
            heap_.txWrite(ctx, f.pred_link, oh->next) != NvStatus::Ok) {
            heap_.txAbort(ctx);
            return KvStatus::Invalid;
        }
    }

    size_t need = kRecordHeader + key.size() + value.size();
    uint64_t noff = heap_.txAlloc(ctx, need, bucketWord(b));
    if (!noff) {
        KvStatus r = mapAllocFailure();
        heap_.txAbort(ctx);
        return r;
    }
    // The block is staged (unpublished) until commit, so these writes
    // need no undo logging; they just have to be durable before the
    // commit record.
    RecordHeader *nh = static_cast<RecordHeader *>(heap_.at(noff));
    char *bytes = static_cast<char *>(heap_.at(noff + kRecordHeader));
    nh->next = *bucketWord(b); // post-unlink chain head
    nh->vlen = uint32_t(value.size());
    nh->klen = uint16_t(key.size());
    nh->flags = 0;
    nh->pad = 0;
    nh->crc = recordCrc(nh->klen, nh->vlen, key, value);
    std::memcpy(bytes, key.data(), key.size());
    std::memcpy(bytes + key.size(), value.data(), value.size());
    heap_.device().persist(nh, kRecordHeader + key.size() + value.size(),
                           TimeKind::FlushData);

    if (heap_.txCommit(ctx) != NvStatus::Ok)
        return KvStatus::Invalid;

    if (f.off) {
        bump(stats_.updates);
        bump(stats_.value_bytes, value.size());
        drop(stats_.value_bytes, old_vlen);
    } else {
        bump(stats_.inserts);
        bump(stats_.records);
        bump(stats_.key_bytes, key.size());
        bump(stats_.value_bytes, value.size());
        ++chain_len_[size_t(b)];
    }
    return KvStatus::Ok;
}

KvStatus
KvStore::get(std::string_view key, std::string *out)
{
    if (key.empty())
        return KvStatus::Invalid;
    if (key.size() > kMaxKeyLen)
        return KvStatus::TooLarge; // symmetric with the put-side refusal
    if (KvStatus r = refuse(); r != KvStatus::Ok)
        return r;
    bump(stats_.gets);
    uint64_t b = bucketOf(key);
    VLockGuard g(stripeOf(b));
    FindResult f = findLocked(b, key);
    if (f.corrupt)
        return KvStatus::Corrupt;
    if (!f.off) {
        bump(stats_.misses);
        return KvStatus::NotFound;
    }
    if (!recordCrcOk(f.off)) {
        bump(stats_.corrupt_records);
        return KvStatus::Corrupt;
    }
    bump(stats_.hits);
    if (out) {
        const RecordHeader *h =
            static_cast<const RecordHeader *>(heap_.at(f.off));
        const char *bytes = static_cast<const char *>(
            heap_.at(f.off + kRecordHeader));
        out->assign(bytes + h->klen, h->vlen);
    }
    return KvStatus::Ok;
}

KvStatus
KvStore::erase(ThreadCtx &ctx, std::string_view key)
{
    if (key.empty())
        return KvStatus::Invalid;
    if (key.size() > kMaxKeyLen)
        return KvStatus::TooLarge;
    if (KvStatus r = refuse(); r != KvStatus::Ok)
        return r;
    uint64_t b = bucketOf(key);
    VLockGuard g(stripeOf(b));
    FindResult f = findLocked(b, key);
    if (f.corrupt)
        return KvStatus::Corrupt;
    if (!f.off)
        return KvStatus::NotFound;

    NvStatus s = heap_.txBegin(ctx);
    if (s == NvStatus::HeapUnhealthy) {
        bump(stats_.rejected_unhealthy);
        return KvStatus::HeapUnhealthy;
    }
    if (s != NvStatus::Ok)
        return KvStatus::Invalid;
    RecordHeader *h = static_cast<RecordHeader *>(heap_.at(f.off));
    uint16_t klen = h->klen;
    uint32_t vlen = h->vlen;
    // Free-then-unlink: both land atomically at commit (the free via
    // the quarantine, the unlink via the journaled word write), and
    // the stripe lock keeps readers out until the record is out of
    // the chain.
    if (heap_.txFree(ctx, f.off) != NvStatus::Ok ||
        heap_.txWrite(ctx, f.pred_link, h->next) != NvStatus::Ok) {
        heap_.txAbort(ctx);
        return KvStatus::Invalid;
    }
    if (heap_.txCommit(ctx) != NvStatus::Ok)
        return KvStatus::Invalid;

    bump(stats_.erases);
    drop(stats_.records);
    drop(stats_.key_bytes, klen);
    drop(stats_.value_bytes, vlen);
    if (chain_len_[size_t(b)])
        --chain_len_[size_t(b)];
    return KvStatus::Ok;
}

KvStatus
KvStore::rmw(ThreadCtx &ctx, std::string_view key,
             const std::function<std::string(std::string_view)> &fn)
{
    if (key.empty())
        return KvStatus::Invalid;
    if (key.size() > kMaxKeyLen)
        return KvStatus::TooLarge;
    if (KvStatus r = refuse(); r != KvStatus::Ok)
        return r;
    uint64_t b = bucketOf(key);
    VLockGuard g(stripeOf(b));
    FindResult f = findLocked(b, key);
    if (f.corrupt)
        return KvStatus::Corrupt;
    std::string_view old;
    if (f.off) {
        if (!recordCrcOk(f.off)) {
            bump(stats_.corrupt_records);
            return KvStatus::Corrupt;
        }
        const RecordHeader *h =
            static_cast<const RecordHeader *>(heap_.at(f.off));
        const char *bytes = static_cast<const char *>(
            heap_.at(f.off + kRecordHeader));
        old = std::string_view(bytes + h->klen, h->vlen);
    }
    // fn may look at `old` in place: putLocked copies the new value
    // into a fresh staged block before the old record is touched.
    std::string next = fn(old);
    KvStatus r = putLocked(ctx, b, key, next);
    if (r == KvStatus::Ok)
        bump(stats_.rmws);
    return r;
}

KvStatus
KvStore::scan(std::string_view start_key, unsigned n,
              std::vector<std::pair<std::string, std::string>> *out)
{
    if (start_key.empty() || !out)
        return KvStatus::Invalid;
    if (KvStatus r = refuse(); r != KvStatus::Ok)
        return r;
    bump(stats_.scans);
    out->clear();
    uint64_t b0 = bucketOf(start_key);
    for (uint64_t i = 0; i < buckets_ && out->size() < n; ++i) {
        uint64_t b = (b0 + i) & bucket_mask_;
        VLockGuard g(stripeOf(b));
        uint64_t off = bucketWord(b)[0];
        uint64_t steps = 0;
        while (off && out->size() < n) {
            if (++steps > kMaxChainSteps || !recordSane(off) ||
                !recordCrcOk(off)) {
                bump(stats_.corrupt_records);
                break;
            }
            const RecordHeader *h =
                static_cast<const RecordHeader *>(heap_.at(off));
            const char *bytes = static_cast<const char *>(
                heap_.at(off + kRecordHeader));
            out->emplace_back(std::string(bytes, h->klen),
                              std::string(bytes + h->klen, h->vlen));
            off = h->next;
        }
    }
    bump(stats_.scanned_records, out->size());
    return KvStatus::Ok;
}

KvStatus
KvStore::verify()
{
    uint64_t bad = 0;
    for (uint64_t b = 0; b < buckets_; ++b) {
        VLockGuard g(stripeOf(b));
        uint64_t off = bucketWord(b)[0];
        uint64_t steps = 0;
        while (off) {
            if (++steps > kMaxChainSteps || !recordSane(off)) {
                bump(stats_.corrupt_records);
                ++bad;
                break;
            }
            if (!recordCrcOk(off)) {
                bump(stats_.corrupt_records);
                ++bad;
            }
            off = static_cast<const RecordHeader *>(heap_.at(off))
                      ->next;
        }
    }
    return bad ? KvStatus::Corrupt : KvStatus::Ok;
}

uint64_t
KvStore::count() const
{
    return stats_.records.load(std::memory_order_relaxed);
}

uint64_t
KvStore::maxChain() const
{
    uint64_t m = 0;
    for (uint32_t len : chain_len_)
        if (len > m)
            m = len;
    return m;
}

uint64_t
KvStore::recordOffset(std::string_view key)
{
    if (key.empty() || key.size() > kMaxKeyLen)
        return 0;
    uint64_t b = bucketOf(key);
    VLockGuard g(stripeOf(b));
    FindResult f = findLocked(b, key);
    return f.off;
}

std::string
KvStore::json() const
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"records\": %llu, \"buckets\": %llu, \"max_chain\": %llu, "
        "\"key_bytes\": %llu, \"value_bytes\": %llu, "
        "\"inserts\": %llu, \"updates\": %llu, \"erases\": %llu, "
        "\"gets\": %llu, \"hits\": %llu, \"misses\": %llu, "
        "\"scans\": %llu, \"rmws\": %llu, "
        "\"corrupt_records\": %llu, \"rejected_unhealthy\": %llu, "
        "\"rejected_quota\": %llu, \"rebuilds\": %llu, "
        "\"rebuilt_records\": %llu}",
        (unsigned long long)count(),
        (unsigned long long)buckets_,
        (unsigned long long)maxChain(),
        (unsigned long long)stats_.key_bytes.load(),
        (unsigned long long)stats_.value_bytes.load(),
        (unsigned long long)stats_.inserts.load(),
        (unsigned long long)stats_.updates.load(),
        (unsigned long long)stats_.erases.load(),
        (unsigned long long)stats_.gets.load(),
        (unsigned long long)stats_.hits.load(),
        (unsigned long long)stats_.misses.load(),
        (unsigned long long)stats_.scans.load(),
        (unsigned long long)stats_.rmws.load(),
        (unsigned long long)stats_.corrupt_records.load(),
        (unsigned long long)stats_.rejected_unhealthy.load(),
        (unsigned long long)stats_.rejected_quota.load(),
        (unsigned long long)stats_.rebuilds.load(),
        (unsigned long long)stats_.rebuilt_records.load());
    return buf;
}

} // namespace nvalloc
